"""Pipelined multi-stream, multi-device batch execution.

Pins the contracts of :mod:`repro.core.pipeline`:

* the event-driven stream scheduler (cross-stream waits create idle gaps,
  busy time vs. elapsed, same-device restriction);
* pipelined runs are **bit-identical** to the sequential chunked path on
  every execution route (per-block, batch-interleaved, gather/pack,
  vbatch) for every knob combination;
* overlap and sharding shrink the modeled makespan;
* ``resilient=True`` fault storms produce deterministic results and a
  correctly merged report regardless of stream/device count;
* per-stream leases never leak, even when a chunk dies mid-pipeline;
* TrafficCounter totals agree with the bytes carried on the copy-stream
  timelines.
"""

import contextlib

import numpy as np
import pytest

from repro.band.generate import random_band_batch, random_rhs
from repro.core.batched import gbsv_vbatch
from repro.core.gbsv import gbsv_batch
from repro.core.gbtrf import gbtrf_batch
from repro.core.pipeline import last_pipeline_result, pipeline_requested
from repro.errors import ArgumentError, DeviceError, DeviceMemoryError
from repro.gpusim import (
    H100_PCIE,
    MI250X_GCD,
    FaultPlan,
    Stream,
    fault_injection,
    memory_pool,
    replicate_device,
)
from repro.gpusim.transfer import TransferRecord


def _rec(t):
    # Streams duck-type their records (only ``.time`` matters for timing).
    return TransferRecord(kernel_name="k", nbytes=0, time=t)


class TestStreamScheduler:
    def test_no_wait_tail_is_sum(self):
        s = Stream(H100_PCIE)
        s.record(_rec(1.0))
        s.record(_rec(2.0))
        assert s.elapsed == pytest.approx(3.0)
        assert s.busy_time == pytest.approx(3.0)
        assert [e.start for e in s.timeline] == pytest.approx([0.0, 1.0])

    def test_wait_event_inserts_idle_gap(self):
        h2d = Stream(H100_PCIE, name="h2d")
        cmp_s = Stream(H100_PCIE, name="compute")
        h2d.record(_rec(5.0))
        cmp_s.wait_event(h2d.record_event())
        cmp_s.record(_rec(1.0))
        # The compute record cannot start before the upload finished.
        assert cmp_s.timeline[0].start == pytest.approx(5.0)
        assert cmp_s.elapsed == pytest.approx(6.0)
        assert cmp_s.busy_time == pytest.approx(1.0)

    def test_overlap_between_waits(self):
        """Chunk i+1's upload overlaps chunk i's compute."""
        h2d = Stream(H100_PCIE, name="h2d")
        cmp_s = Stream(H100_PCIE, name="compute")
        for _ in range(3):
            h2d.record(_rec(1.0))
            cmp_s.wait_event(h2d.record_event())
            cmp_s.record(_rec(1.0))
        # Serial would be 6.0; the pipeline hides all but the first upload.
        assert cmp_s.elapsed == pytest.approx(4.0)
        assert h2d.elapsed == pytest.approx(3.0)

    def test_cross_device_wait_raises(self):
        a = Stream(H100_PCIE)
        b = Stream(MI250X_GCD)
        a.record(_rec(1.0))
        with pytest.raises(DeviceError):
            b.wait_event(a.record_event())

    def test_reset_clears_pending_wait(self):
        a = Stream(H100_PCIE)
        b = Stream(H100_PCIE)
        a.record(_rec(4.0))
        b.wait_event(a.record_event())
        b.reset()
        b.record(_rec(1.0))
        assert b.timeline[0].start == pytest.approx(0.0)


class TestKnobs:
    def test_pipeline_requested(self):
        assert not pipeline_requested()
        assert not pipeline_requested(streams=1)
        assert not pipeline_requested(overlap=False)
        assert pipeline_requested(streams=2)
        assert pipeline_requested(overlap=True)
        assert pipeline_requested(devices=1)
        assert pipeline_requested(devices=[H100_PCIE, MI250X_GCD])

    def test_replicate_device_names(self):
        devs = replicate_device(H100_PCIE, 3)
        assert [d.name for d in devs] == [
            "h100-pcie:0", "h100-pcie:1", "h100-pcie:2"]
        assert all(d.num_sms == H100_PCIE.num_sms for d in devs)

    def test_duplicate_device_names_rejected(self):
        n, kl, ku, batch = 16, 2, 2, 8
        a = random_band_batch(batch, n, kl, ku, seed=0)
        b = random_rhs(n, 1, batch=batch, seed=1)
        with pytest.raises(ArgumentError):
            gbsv_batch(n, kl, ku, 1, a, None, b,
                       devices=[H100_PCIE, H100_PCIE])
        with pytest.raises(ArgumentError):
            gbsv_batch(n, kl, ku, 1, a, None, b, devices=0)
        with pytest.raises(ArgumentError):
            gbsv_batch(n, kl, ku, 1, a, None, b, streams=0, overlap=True)

    def test_last_pipeline_result_populated(self):
        n, kl, ku, batch = 16, 2, 2, 24
        a = random_band_batch(batch, n, kl, ku, seed=0)
        b = random_rhs(n, 1, batch=batch, seed=1)
        gbsv_batch(n, kl, ku, 1, a, None, b, devices=2, chunk_hint=6)
        res = last_pipeline_result()
        assert res is not None
        assert res.op == "gbsv"
        assert res.batch == batch
        assert res.devices == ("h100-pcie:0", "h100-pcie:1")
        assert res.streams == 3 and res.overlap
        assert res.makespan > 0.0
        assert sum(s.partition.count for s in res.shards) == batch
        d = res.to_dict()
        assert d["devices"] == list(res.devices)
        assert d["makespan"] == pytest.approx(res.makespan)


# Knob combinations swept by the bit-identity tests.
KNOBS = [
    dict(streams=3),
    dict(streams=2),
    dict(overlap=True),
    dict(devices=2, overlap=False),
    dict(devices=2),
    dict(devices=3, streams=2),
    dict(devices=[H100_PCIE, MI250X_GCD]),
]
KNOB_IDS = ["streams3", "streams2", "overlap", "2dev-seq", "2dev",
            "3dev-streams2", "hetero"]


@pytest.mark.parametrize("knobs", KNOBS, ids=KNOB_IDS)
class TestBitIdentity:
    """Pipelined == sequential chunked, bit for bit, on every route."""

    n, kl, ku, nrhs, batch = 24, 3, 2, 2, 30

    def _problem(self, seed=0, scattered=False):
        a = random_band_batch(self.batch, self.n, self.kl, self.ku,
                              seed=seed)
        b = random_rhs(self.n, self.nrhs, batch=self.batch, seed=seed + 1)
        if scattered:
            # Separately-allocated per-problem arrays -> gather/pack route.
            a = [np.array(a[k]) for k in range(self.batch)]
            b = [np.array(b[k]) for k in range(self.batch)]
        return a, b

    def _run(self, a, b, *, vectorize=None, **kw):
        piv, info = gbsv_batch(self.n, self.kl, self.ku, self.nrhs,
                               a, None, b, batch=self.batch,
                               vectorize=vectorize, chunk_hint=7, **kw)
        return (np.asarray(a).tobytes(), np.asarray(b).tobytes(),
                np.asarray(piv).tobytes(), np.asarray(info).tobytes())

    def _check(self, knobs, *, vectorize=None, scattered=False):
        a0, b0 = self._problem(scattered=scattered)
        ref = self._run(a0, b0, vectorize=vectorize)
        a1, b1 = self._problem(scattered=scattered)
        out = self._run(a1, b1, vectorize=vectorize, **knobs)
        assert out == ref

    def test_per_block_route(self, knobs):
        self._check(knobs, vectorize=False)

    def test_vectorized_route(self, knobs):
        self._check(knobs, vectorize=True)

    def test_gather_pack_route(self, knobs):
        self._check(knobs, vectorize=True, scattered=True)

    def test_vbatch_route(self, knobs):
        cfgs = [(16, 2, 2, 1)] * 10 + [(24, 3, 1, 2)] * 12 + [(8, 1, 1, 1)] * 8
        ns = [c[0] for c in cfgs]
        kls = [c[1] for c in cfgs]
        kus = [c[2] for c in cfgs]
        nrhss = [c[3] for c in cfgs]

        def problem():
            rng = np.random.default_rng(7)
            a = [np.asarray(random_band_batch(1, n, kl, ku,
                                              seed=int(rng.integers(1 << 30))))[0]
                 for n, kl, ku in zip(ns, kls, kus)]
            b = [np.asarray(random_rhs(n, nr, batch=1,
                                       seed=int(rng.integers(1 << 30))))[0]
                 for n, nr in zip(ns, nrhss)]
            return a, b

        def run(a, b, **kw):
            piv, info = gbsv_vbatch(ns, kls, kus, nrhss, a, b,
                                    chunk_hint=4, **kw)
            return (tuple(x.tobytes() for x in a),
                    tuple(x.tobytes() for x in b),
                    tuple(np.asarray(p).tobytes() for p in piv),
                    np.asarray(info).tobytes())

        a0, b0 = problem()
        ref = run(a0, b0)
        a1, b1 = problem()
        assert run(a1, b1, **knobs) == ref

    def test_unchunked_reference(self, knobs):
        """Pipelined also matches a plain unchunked, ungoverned run."""
        a0, b0 = self._problem()
        piv0, info0 = gbsv_batch(self.n, self.kl, self.ku, self.nrhs,
                                 a0, None, b0, batch=self.batch)
        a1, b1 = self._problem()
        piv1, info1 = gbsv_batch(self.n, self.kl, self.ku, self.nrhs,
                                 a1, None, b1, batch=self.batch,
                                 chunk_hint=7, **knobs)
        assert a1.tobytes() == a0.tobytes()
        assert b1.tobytes() == b0.tobytes()
        assert np.asarray(piv1).tobytes() == np.asarray(piv0).tobytes()
        assert np.asarray(info1).tobytes() == np.asarray(info0).tobytes()


class TestMakespan:
    n, kl, ku, batch = 64, 4, 3, 64

    def _problem(self, seed=0):
        a = random_band_batch(self.batch, self.n, self.kl, self.ku,
                              seed=seed)
        b = random_rhs(self.n, 1, batch=self.batch, seed=seed + 1)
        return a, b

    def test_overlap_beats_sequential_staging(self):
        """Double-buffered staging hides copies behind compute.

        ``chunk_hint=3`` keeps the chunk layout identical in both runs
        even when ``REPRO_GLOBAL_MEM_BYTES`` squeezes the pool (the
        pipelined plan divides the budget by its buffer count).
        """
        a, b = self._problem()
        seq = Stream(H100_PCIE)
        gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                   stream=seq, chunk_hint=3)
        sequential = seq.elapsed

        a, b = self._problem()
        gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                   chunk_hint=3, streams=3)
        res = last_pipeline_result()
        assert res.makespan < sequential
        # The shards' engines did the same total work.
        assert res.device_busy_time == pytest.approx(sequential, rel=1e-9)

    def test_two_devices_beat_one(self):
        a, b = self._problem()
        gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                   chunk_hint=8, overlap=True)
        one = last_pipeline_result().makespan

        a, b = self._problem()
        gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                   chunk_hint=8, devices=2)
        two = last_pipeline_result().makespan
        assert two < one
        assert one / two > 1.5

    def test_no_overlap_matches_sequential_model(self):
        """devices=1 + overlap=False pipelines nothing: same makespan."""
        a, b = self._problem()
        seq = Stream(H100_PCIE)
        gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                   stream=seq, chunk_hint=8)
        sequential = seq.elapsed

        a, b = self._problem()
        gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                   chunk_hint=8, devices=1, overlap=False)
        res = last_pipeline_result()
        assert res.streams == 1
        assert res.makespan == pytest.approx(sequential, rel=1e-9)

    def test_summary_record_on_caller_stream(self):
        a, b = self._problem()
        caller = Stream(H100_PCIE)
        gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                   stream=caller, chunk_hint=8, devices=2)
        res = last_pipeline_result()
        assert caller.launch_count() == 1
        rec = caller.records[0]
        assert rec.kernel_name == "gbsv_pipeline"
        assert rec.nbytes == 0
        assert rec.time == pytest.approx(res.makespan)


class TestFaultStorms:
    """Deterministic resilience regardless of stream/device count."""

    n, kl, ku, batch = 24, 3, 2, 32

    def _problem(self, seed=3):
        a = random_band_batch(self.batch, self.n, self.kl, self.ku,
                              seed=seed)
        b = random_rhs(self.n, 1, batch=self.batch, seed=seed + 1)
        return a, b

    def _storm(self, plan, **knobs):
        """Run one resilient call under ``plan`` armed on every replica."""
        devs = knobs.get("devices")
        if isinstance(devs, int):
            devs = replicate_device(H100_PCIE, devs)
            knobs = dict(knobs, devices=devs)
        targets = devs if devs is not None else [H100_PCIE]
        a, b = self._problem()
        with contextlib.ExitStack() as stack:
            injs = [stack.enter_context(fault_injection(d, plan))
                    for d in targets]
            piv, info, rep = gbsv_batch(
                self.n, self.kl, self.ku, 1, a, None, b,
                resilient=True, chunk_hint=8, **knobs)
        return (a.tobytes(), b.tobytes(), np.asarray(piv).tobytes(),
                np.asarray(info).tobytes(), rep, injs)

    def test_alloc_storm_deterministic_across_device_counts(self):
        plan = FaultPlan(seed=11, alloc_failure_rate=0.9,
                         max_alloc_failures=6, alloc_labels="gbsv-chunk")
        ref = self._storm(FaultPlan(seed=11))          # fault-free baseline
        for knobs in (dict(streams=3), dict(devices=2),
                      dict(devices=3, streams=2)):
            first = self._storm(plan, **knobs)
            again = self._storm(plan, **knobs)
            # Identical storm -> identical bytes, and the self-healing
            # path converges to the fault-free answer.
            assert first[:4] == again[:4]
            assert first[:4] == ref[:4]
            assert first[4].oom_failures == sum(
                inj.counts()["alloc-failure"] for inj in first[5])
            assert first[4].oom_failures > 0

    def test_lane_windows_use_global_indices(self):
        """Corruption lanes land identically however the batch is sharded."""
        lanes = (1, 9, 17, 30)
        plan = FaultPlan(seed=5, corrupt_lanes=lanes)
        seq = self._storm(plan)
        shard = self._storm(plan, devices=2)
        assert shard[:4] == seq[:4]
        hit = [ev.lane for inj in shard[5]
               for ev in inj.events("lane-corruption")]
        assert sorted(hit) == sorted(lanes)

    def test_report_merges_across_shards(self):
        plan = FaultPlan(seed=2, alloc_failure_rate=1.0,
                         max_alloc_failures=3, alloc_labels="gbsv-chunk")
        out = self._storm(plan, devices=2)
        rep = out[4]
        assert rep.devices == ("h100-pcie:0", "h100-pcie:1")
        assert rep.makespan > 0.0
        assert sum(rep.chunks) == self.batch
        kinds = {ev["action"] for ev in rep.chunk_events}
        assert "split" in kinds
        assert kinds & {"drain", "halve", "host"}
        assert all("device" in ev for ev in rep.chunk_events)
        assert "devices=" in rep.summary()
        # Round-trips through the wire format.
        from repro.core.resilience import BatchReport
        back = BatchReport.from_dict(rep.to_dict())
        assert back.devices == rep.devices
        assert back.makespan == pytest.approx(rep.makespan)


class TestLeaseAccounting:
    """No pool leak after an OOM (or crash) mid-pipeline."""

    n, kl, ku, batch = 24, 3, 2, 32

    def _pools(self, devs):
        return [memory_pool(d) for d in devs]

    def _problem(self):
        a = random_band_batch(self.batch, self.n, self.kl, self.ku, seed=0)
        b = random_rhs(self.n, 1, batch=self.batch, seed=1)
        return a, b

    def test_resilient_storm_leaves_pools_clean(self):
        devs = replicate_device(H100_PCIE, 2)
        plan = FaultPlan(seed=4, alloc_failure_rate=1.0,
                         max_alloc_failures=8, alloc_labels="gbsv-chunk")
        a, b = self._problem()
        with fault_injection(devs[0], plan), fault_injection(devs[1], plan):
            gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                       resilient=True, chunk_hint=8, devices=devs)
        for pool in self._pools(devs):
            assert pool.in_use == 0
            assert pool.in_use_by_label == {}

    def test_nonresilient_oom_raises_and_frees(self):
        devs = replicate_device(H100_PCIE, 2)
        plan = FaultPlan(seed=4, alloc_failure_rate=1.0,
                         max_alloc_failures=1, alloc_labels="gbsv-chunk")
        a, b = self._problem()
        with fault_injection(devs[0], plan):
            with pytest.raises(DeviceMemoryError):
                gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                           chunk_hint=8, devices=devs)
        for pool in self._pools(devs):
            assert pool.in_use == 0
            assert pool.in_use_by_label == {}

    def test_mid_chunk_crash_frees_current_lease(self):
        devs = replicate_device(H100_PCIE, 2)
        plan = FaultPlan(seed=4, launch_failure_rate=1.0,
                         max_launch_failures=1)
        a, b = self._problem()
        with fault_injection(devs[1], plan):
            with pytest.raises(DeviceError):
                gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                           chunk_hint=8, devices=devs)
        for pool in self._pools(devs):
            assert pool.in_use == 0
            assert pool.in_use_by_label == {}


class TestTrafficAgreement:
    """Copy-stream timelines carry exactly the counted staging bytes."""

    n, kl, ku, batch = 24, 3, 2, 32

    def test_counter_matches_stream_records(self):
        a = random_band_batch(self.batch, self.n, self.kl, self.ku, seed=0)
        piv = np.zeros((self.batch, self.n), dtype=np.int64)
        info = np.zeros(self.batch, dtype=np.int64)
        devs = replicate_device(H100_PCIE, 2)
        pools = [memory_pool(d) for d in devs]
        before = [p.traffic.total for p in pools]
        gbtrf_batch(self.n, self.n, self.kl, self.ku, a, piv, info,
                    chunk_hint=8, devices=devs, vectorize=False)
        res = last_pipeline_result()
        counted = sum(p.traffic.total - b for p, b in zip(pools, before))
        assert counted == res.h2d_bytes + res.d2h_bytes
        # Every staged chunk is on a copy-stream timeline with its bytes.
        staged = 0
        for shard in res.shards:
            for s in set(shard.streams):
                staged += sum(e.record.nbytes for e in s.timeline
                              if e.record.kernel_name.startswith("chunk_"))
        assert staged == counted
        # All chunks were staged (every shard was chunked smaller than
        # the batch), so both directions moved the full footprint.
        from repro.core.memory_plan import _lane_bytes
        lane = _lane_bytes(a[0], piv[0])
        assert res.h2d_bytes == self.batch * lane
        assert res.d2h_bytes == self.batch * lane

    def test_h2d_and_d2h_ride_separate_streams(self):
        a = random_band_batch(self.batch, self.n, self.kl, self.ku, seed=0)
        b = random_rhs(self.n, 1, batch=self.batch, seed=1)
        gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                   chunk_hint=8, streams=3)
        res = last_pipeline_result()
        (shard,) = res.shards
        s_h2d, s_cmp, s_d2h = shard.streams
        assert len({id(s) for s in shard.streams}) == 3
        assert all(e.record.kernel_name == "chunk_h2d"
                   for e in s_h2d.timeline)
        assert all(e.record.kernel_name == "chunk_d2h"
                   for e in s_d2h.timeline)
        assert not any(e.record.kernel_name.startswith("chunk_")
                       for e in s_cmp.timeline)
        assert sum(e.record.nbytes for e in s_h2d.timeline) == shard.h2d_bytes
        assert sum(e.record.nbytes for e in s_d2h.timeline) == shard.d2h_bytes


class TestDeviceFaultDomain:
    """Failover, circuit breaking, watchdog, and hedging on the pipeline.

    The PR 8 acceptance contract: a seeded mid-run device outage on one
    of two shard devices completes every lane bit-identically to the
    healthy single-device run, with the trip/probe/recovery arc recorded
    in ``BatchReport.device_events``.
    """

    n, kl, ku, batch = 24, 3, 2, 24

    def _problem(self, seed=9):
        a = random_band_batch(self.batch, self.n, self.kl, self.ku,
                              seed=seed)
        b = random_rhs(self.n, 1, batch=self.batch, seed=seed + 1)
        return a, b

    def _healthy(self, *, vectorize=None, layout=None):
        """Fault-free single-device reference bytes for one route."""
        a, b = self._problem()
        if layout == "soa":
            from repro.band.layout import to_interleaved
            a, b = to_interleaved(a), to_interleaved(b)
        piv, info, _ = gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                                  resilient=True, chunk_hint=4,
                                  vectorize=vectorize, layout=layout)
        return (np.asarray(a).tobytes(), np.asarray(b).tobytes(),
                np.asarray(piv).tobytes(), np.asarray(info).tobytes())

    def _outage_run(self, plan, *, vectorize=None, layout=None, policy=None,
                    ndev=2):
        """Seeded outage on shard device 0 of ``ndev``; returns bytes+rep."""
        devs = replicate_device(H100_PCIE, ndev)
        a, b = self._problem()
        if layout == "soa":
            from repro.band.layout import to_interleaved
            a, b = to_interleaved(a), to_interleaved(b)
        with fault_injection(devs[0], plan):
            piv, info, rep = gbsv_batch(
                self.n, self.kl, self.ku, 1, a, None, b,
                resilient=True, chunk_hint=4, devices=devs,
                vectorize=vectorize, layout=layout, policy=policy)
        return (np.asarray(a).tobytes(), np.asarray(b).tobytes(),
                np.asarray(piv).tobytes(), np.asarray(info).tobytes()), rep

    OUTAGE = dict(seed=7, outage_after=1, outage_failures=4)

    @pytest.mark.parametrize("route", [
        dict(vectorize=False),            # per-block
        dict(vectorize=True),             # [vec]
        dict(vectorize=True, layout="soa"),  # [vec+soa]
    ], ids=["per-block", "vec", "vec+soa"])
    def test_outage_recovery_bit_identical(self, route):
        ref = self._healthy(**route)
        out, rep = self._outage_run(FaultPlan(**self.OUTAGE), **route)
        assert out == ref
        assert rep.failovers > 0
        kinds = [e["event"] for e in rep.device_events]
        assert "failover" in kinds
        assert "trip" in kinds and "probe" in kinds
        assert "recover" in kinds or "reopen" in kinds

    def test_outage_decisions_deterministic(self):
        _, rep1 = self._outage_run(FaultPlan(**self.OUTAGE))
        _, rep2 = self._outage_run(FaultPlan(**self.OUTAGE))
        strip = lambda evs: [
            {k: v for k, v in e.items()} for e in evs]
        assert strip(rep1.device_events) == strip(rep2.device_events)
        assert rep1.failovers == rep2.failovers

    def test_permanent_outage_survivor_completes(self):
        """outage_failures=None never heals: device dies, lanes survive."""
        ref = self._healthy()
        out, rep = self._outage_run(
            FaultPlan(seed=3, outage_after=0))
        assert out == ref
        kinds = [e["event"] for e in rep.device_events]
        assert "trip" in kinds
        assert rep.failovers > 0

    def test_all_devices_dead_falls_to_host(self):
        """Both shard devices out -> host leftover still completes."""
        import contextlib as _ctx
        devs = replicate_device(H100_PCIE, 2)
        ref = self._healthy()
        a, b = self._problem()
        with _ctx.ExitStack() as stack:
            for d in devs:
                stack.enter_context(
                    fault_injection(d, FaultPlan(seed=1, outage_after=0)))
            piv, info, rep = gbsv_batch(
                self.n, self.kl, self.ku, 1, a, None, b,
                resilient=True, chunk_hint=4, devices=devs)
        out = (a.tobytes(), b.tobytes(), np.asarray(piv).tobytes(),
               np.asarray(info).tobytes())
        assert out == ref
        assert any(e.get("action") == "host" and
                   e.get("reason") == "no-healthy-devices"
                   for e in rep.chunk_events)
        assert any(e.get("event") == "dead" for e in rep.device_events)

    def test_watchdog_hang_fails_over(self):
        from repro.core.resilience import ResiliencePolicy
        ref = self._healthy()
        plan = FaultPlan(seed=5, hang_launches=1, hang_seconds=5.0)
        out, rep = self._outage_run(
            plan, policy=ResiliencePolicy(watchdog=0.5))
        assert out == ref
        assert rep.failovers > 0
        assert any(e.get("kind") == "hang" for e in rep.device_events
                   if e.get("event") == "failover")

    def test_hedging_duplicates_stragglers(self):
        from repro.core.resilience import ResiliencePolicy
        ref = self._healthy()
        # An un-watched hang inflates one chunk far past the median.
        plan = FaultPlan(seed=5, hang_launches=1, hang_seconds=10.0)
        out, rep = self._outage_run(
            plan, policy=ResiliencePolicy(hedge_ratio=1.5))
        assert out == ref
        assert rep.hedges >= 1
        assert any(e.get("event") == "hedge" for e in rep.device_events)

    def test_pools_clean_after_failover(self):
        devs = replicate_device(H100_PCIE, 2)
        a, b = self._problem()
        with fault_injection(devs[0], FaultPlan(**self.OUTAGE)):
            gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                       resilient=True, chunk_hint=4, devices=devs)
        for d in devs:
            assert memory_pool(d).in_use == 0

    def test_pipeline_result_reports_rounds(self):
        devs = replicate_device(H100_PCIE, 2)
        a, b = self._problem()
        with fault_injection(devs[0], FaultPlan(**self.OUTAGE)):
            gbsv_batch(self.n, self.kl, self.ku, 1, a, None, b,
                       resilient=True, chunk_hint=4, devices=devs)
        pres = last_pipeline_result()
        assert pres.rounds > 1
        assert len(pres.round_makespans) == pres.rounds
        assert pres.makespan == pytest.approx(sum(pres.round_makespans))
        d = pres.to_dict()
        for key in ("rounds", "round_makespans", "device_events",
                    "failovers", "hedges"):
            assert key in d
        assert any(p["role"] == "full" for p in d["partitions"])
