"""Unit tests for the simulated device registry and specs."""

import dataclasses

import pytest

from repro.errors import DeviceError
from repro.gpusim import H100_PCIE, MI250X_GCD, DeviceSpec, get_device, list_devices, register_device


class TestRegistry:
    def test_shipped_devices_present(self):
        assert "h100-pcie" in list_devices()
        assert "mi250x-gcd" in list_devices()

    def test_get_device(self):
        assert get_device("h100-pcie") is H100_PCIE
        assert get_device("mi250x-gcd") is MI250X_GCD

    def test_unknown_device(self):
        with pytest.raises(DeviceError):
            get_device("b200")

    def test_reregister_identical_is_ok(self):
        register_device(H100_PCIE)

    def test_reregister_conflicting_fails(self):
        conflicting = dataclasses.replace(H100_PCIE, num_sms=1)
        with pytest.raises(DeviceError):
            register_device(conflicting)

    def test_register_new(self):
        spec = dataclasses.replace(H100_PCIE, name="test-gpu")
        try:
            register_device(spec)
            assert get_device("test-gpu") is spec
        finally:
            from repro.gpusim.device import _REGISTRY
            _REGISTRY.pop("test-gpu", None)


class TestPaperParameters:
    def test_bandwidths_match_paper_measurements(self):
        assert H100_PCIE.dram_bandwidth == pytest.approx(1.92e12)
        assert MI250X_GCD.dram_bandwidth == pytest.approx(1.31e12)
        # "The H100-PCIe GPU achieves 47% higher bandwidth"
        ratio = H100_PCIE.dram_bandwidth / MI250X_GCD.dram_bandwidth
        assert ratio == pytest.approx(1.47, abs=0.02)

    def test_shared_memory_ratio(self):
        # "its shared memory is 3.5x smaller than the H100 GPU"
        ratio = H100_PCIE.smem_per_sm / MI250X_GCD.smem_per_sm
        assert 3.0 < ratio < 4.0

    def test_warp_sizes(self):
        assert H100_PCIE.warp_size == 32
        assert MI250X_GCD.warp_size == 64


class TestRounding:
    def test_round_threads_to_warps(self):
        assert H100_PCIE.round_threads(1) == 32
        assert H100_PCIE.round_threads(33) == 64
        assert MI250X_GCD.round_threads(33) == 64
        assert MI250X_GCD.round_threads(65) == 128

    def test_round_smem_includes_overhead(self):
        rounded = H100_PCIE.round_smem(100)
        assert rounded >= 100 + H100_PCIE.smem_block_overhead
        assert rounded % H100_PCIE.smem_granularity == 0

    def test_round_smem_monotone(self):
        assert H100_PCIE.round_smem(2048) >= H100_PCIE.round_smem(1024)
