"""Batch-interleaved (SoA) storage layout: detection, dispatch, bit-identity.

The contracts under test (docs/LAYOUTS.md):

* ``to_interleaved``/``to_lane_major`` round-trip bit-exactly and
  ``alloc_band_interleaved`` produces a stack that ``is_interleaved``
  recognises (lane index fastest-varying in memory);
* ``is_interleaved_stack`` admits exactly the lane lists whose disjointness
  the stride proof can establish — including consecutive chunk sub-slices,
  which is what keeps governance/pipelining/resilience layout-native — and
  rejects lane-major stacks, scattered batches and aliased lanes;
* every driver runs an interleaved batch natively (``[vec+soa]`` in the
  trace, zero conversions) with results bit-identical to the per-block and
  classic ``[vec]``/``[vec+pack]`` paths;
* the ``layout=`` knob stages a batch into the requested layout exactly
  once at the batch boundary: a trace carries exactly one record with
  ``soa_bytes > 0`` no matter how many stages or chunks follow;
* the serving layer forwards ``layout`` and stays transparent — cache hit
  == cold at atol=0.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    SolverService,
    alloc_band_interleaved,
    gbcon_batch,
    gbrfs_batch,
    gbsv_batch,
    gbsv_vbatch,
    gbtrf_batch,
    gbtrs_batch,
    is_interleaved,
    to_interleaved,
    to_lane_major,
)
from repro.band.generate import random_band_batch, random_rhs
from repro.band.layout import (
    INTERLEAVED,
    LANE_MAJOR,
    alloc_band,
    normalize_layout,
)
from repro.core.batch_args import (
    convert_batch_layout,
    is_interleaved_stack,
    is_uniform_stack,
    soa_stageable,
    stack_view,
)
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, Stream
from repro.gpusim.faults import FaultPlan, fault_injection

DTYPES = [np.float32, np.float64, np.complex128]
DTYPE_IDS = [np.dtype(d).name for d in DTYPES]


def _bytes_equal(*pairs):
    for got, ref in pairs:
        assert np.asarray(got).tobytes() == np.asarray(ref).tobytes()


def _launches(stream):
    """Kernel launch records only (chunked runs interleave transfers)."""
    return [r for r in stream.records if hasattr(r, "display_name")]


def _materialize(stack):
    """Lane-major copy of a logical ``(batch, ...)`` stack, any layout."""
    return np.ascontiguousarray(stack)


# ---------------------------------------------------------------------------
# Primitives: aliases, allocation, round-trip
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_normalize_layout(self):
        assert normalize_layout(None) is None
        assert normalize_layout("soa") == INTERLEAVED
        assert normalize_layout("interleaved") == INTERLEAVED
        assert normalize_layout("aos") == LANE_MAJOR
        assert normalize_layout("lane-major") == LANE_MAJOR
        with pytest.raises(ArgumentError):
            normalize_layout("column-major")

    def test_alloc_band_interleaved(self):
        n, kl, ku, batch = 12, 2, 3, 5
        soa = alloc_band_interleaved(n, kl, ku, batch)
        aos = alloc_band(n, kl, ku, batch=batch)
        assert soa.shape == aos.shape
        assert is_interleaved(soa) and not is_interleaved(aos)
        # lane index is the fastest-varying dimension
        assert soa.strides[0] == soa.itemsize
        assert is_interleaved_stack(list(soa))
        assert is_uniform_stack(list(aos))

    @given(batch=st.integers(2, 9), rows=st.integers(1, 7),
           cols=st.integers(1, 7), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_is_bit_exact(self, batch, rows, cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((batch, rows, cols))
        soa = to_interleaved(a)
        assert is_interleaved(soa)
        assert np.array_equal(_materialize(soa), a)
        back = to_lane_major(soa)
        assert back.tobytes() == a.tobytes()
        # Back-conversion of a lane-major stack is the identity transform.
        assert to_lane_major(a).tobytes() == a.tobytes()

    @given(batch=st.integers(2, 6), n=st.integers(1, 8),
           seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_2d_rhs(self, batch, n, seed):
        rng = np.random.default_rng(seed)
        b = rng.standard_normal((batch, n))       # nrhs=1 shorthand
        soa = to_interleaved(b)
        assert soa.strides[0] == soa.itemsize
        assert to_lane_major(soa).tobytes() == b.tobytes()


# ---------------------------------------------------------------------------
# Detection: which lane lists qualify for the SoA route
# ---------------------------------------------------------------------------


class TestDetection:
    def _soa(self, batch=8, n=10, kl=1, ku=2):
        a = random_band_batch(batch, n, kl, ku, seed=3)
        return to_interleaved(a)

    def test_full_interleaved_stack_detected(self):
        soa = self._soa()
        assert is_interleaved_stack(list(soa))

    def test_chunk_subslices_stay_detectable(self):
        """Consecutive sub-slices (what the chunked executor takes) must
        keep the property — this is what makes chunking conversion-free."""
        lanes = list(self._soa(batch=8))
        for start, stop in [(0, 3), (2, 7), (5, 8)]:
            assert is_interleaved_stack(lanes[start:stop])

    def test_rejections(self):
        aos = random_band_batch(6, 10, 1, 2, seed=4)
        assert not is_interleaved_stack(list(aos))          # lane-major
        scattered = [np.array(m) for m in aos]
        assert not is_interleaved_stack(scattered)          # own buffers
        lanes = list(self._soa(batch=6))
        assert not is_interleaved_stack(lanes[:1])          # single lane
        assert not is_interleaved_stack([lanes[0], lanes[0]])   # aliased
        assert not is_interleaved_stack(lanes[::-1])        # negative delta
        assert not is_interleaved_stack([lanes[0], lanes[2],
                                         lanes[4], lanes[5]])  # uneven

    def test_stack_view_aliases_lanes_writably(self):
        soa = self._soa(batch=5)
        lanes = list(soa)
        view = stack_view(lanes)
        assert view.shape == soa.shape
        view[3, 0, 0] = 123.0
        assert lanes[3][0, 0] == 123.0

    def test_soa_stageable_mixes_layouts(self):
        a_soa = list(self._soa(batch=5))
        b_aos = list(random_rhs(10, 2, batch=5, seed=5))
        assert soa_stageable(a_soa, b_aos)       # one interleaved suffices
        assert not soa_stageable(b_aos)          # all lane-major: use [vec]
        assert not soa_stageable(a_soa, [np.array(b) for b in b_aos])


# ---------------------------------------------------------------------------
# Bit-identity: SoA vs per-block vs classic [vec]
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
@pytest.mark.parametrize("method", ["window", "fused"])
def test_gbtrf_soa_bitwise(dtype, method):
    batch, n = 9, 40 if method == "window" else 20
    kl, ku = 3, 2
    a = random_band_batch(batch, n, kl, ku, dtype=dtype, seed=7)
    a_ref, a_vec = a.copy(), a.copy()
    piv_ref, info_ref = gbtrf_batch(n, n, kl, ku, a_ref, method=method,
                                    vectorize=False)
    piv_vec, info_vec = gbtrf_batch(n, n, kl, ku, a_vec, method=method)
    a_soa = to_interleaved(a)
    stream = Stream(H100_PCIE)
    piv_soa, info_soa = gbtrf_batch(n, n, kl, ku, a_soa, method=method,
                                    stream=stream, vectorize=True)
    rec = _launches(stream)[-1]
    assert rec.soa and rec.vectorized and not rec.packed
    assert rec.display_name.endswith("[vec+soa]")
    _bytes_equal((_materialize(a_soa), a_ref), (a_vec, a_ref),
                 (np.stack(piv_soa), np.stack(piv_ref)),
                 (info_soa, info_ref), (info_vec, info_ref))


@pytest.mark.parametrize("trans", ["N", "T", "C"])
def test_gbtrs_soa_bitwise(trans):
    batch, n, kl, ku, nrhs = 9, 40, 2, 3, 2
    dtype = np.complex128 if trans == "C" else np.float64
    a = random_band_batch(batch, n, kl, ku, dtype=dtype, seed=8)
    b = random_rhs(n, nrhs, batch=batch, dtype=dtype, seed=9)
    piv, info = gbtrf_batch(n, n, kl, ku, a)
    b_ref = b.copy()
    gbtrs_batch(trans, n, kl, ku, nrhs, a, piv, b_ref, vectorize=False)
    # factors lane-major, RHS interleaved — mixed layouts still take SoA
    b_soa = to_interleaved(b)
    stream = Stream(H100_PCIE)
    gbtrs_batch(trans, n, kl, ku, nrhs, a, piv, b_soa, stream=stream)
    assert all(r.soa for r in _launches(stream))
    _bytes_equal((_materialize(b_soa), b_ref))
    # both operands interleaved
    a_soa, b_soa2 = to_interleaved(a), to_interleaved(b)
    gbtrs_batch(trans, n, kl, ku, nrhs, a_soa, piv, b_soa2)
    _bytes_equal((_materialize(b_soa2), b_ref))


@pytest.mark.parametrize("method", ["standard", "fused"])
def test_gbsv_soa_bitwise(method):
    batch, kl, ku = 9, 2, 2
    n = 40 if method == "standard" else 20
    a = random_band_batch(batch, n, kl, ku, seed=10)
    b = random_rhs(n, 1, batch=batch, seed=11)
    a_ref, b_ref = a.copy(), b.copy()
    piv_ref, info_ref = gbsv_batch(n, kl, ku, 1, a_ref, None, b_ref,
                                   method=method, vectorize=False)
    a_soa, b_soa = to_interleaved(a), to_interleaved(b)
    piv, info = gbsv_batch(n, kl, ku, 1, a_soa, None, b_soa, method=method)
    _bytes_equal((_materialize(a_soa), a_ref), (_materialize(b_soa), b_ref),
                 (np.stack(piv), np.stack(piv_ref)), (info, info_ref))


def test_gbsv_soa_singular_lanes():
    """Singular lanes keep their RHS bits; the non-singular subset is a
    scattered selection of interleaved lanes, which correctly falls back
    to per-block execution (byte spans interleave with the skipped lanes,
    so neither the SoA nor the pack gate admits it)."""
    batch, n, kl, ku = 8, 24, 2, 2
    a = random_band_batch(batch, n, kl, ku, seed=12)
    a[2, :, 5] = 0
    a[5, :, 0] = 0
    b = random_rhs(n, 1, batch=batch, seed=13)
    a_ref, b_ref = a.copy(), b.copy()
    piv_ref, info_ref = gbsv_batch(n, kl, ku, 1, a_ref, None, b_ref,
                                   method="standard", vectorize=False)
    assert info_ref[2] != 0 and info_ref[5] != 0
    a_soa, b_soa = to_interleaved(a), to_interleaved(b)
    piv, info = gbsv_batch(n, kl, ku, 1, a_soa, None, b_soa,
                           method="standard")
    _bytes_equal((_materialize(a_soa), a_ref), (_materialize(b_soa), b_ref),
                 (np.stack(piv), np.stack(piv_ref)), (info, info_ref))


def test_vbatch_soa_groups():
    """Uniform groups carved out of interleaved stacks run natively and
    match the lane-major reference bit-for-bit."""
    batch, n, kl, ku = 10, 20, 2, 1
    a = random_band_batch(batch, n, kl, ku, seed=14)
    b = random_rhs(n, 1, batch=batch, seed=15)
    a_ref, b_ref = a.copy(), b.copy()
    dims = [n] * batch, [kl] * batch, [ku] * batch, [1] * batch
    piv_ref, info_ref = gbsv_vbatch(*dims, list(a_ref), list(b_ref))
    a_soa, b_soa = to_interleaved(a), to_interleaved(b)
    piv, info = gbsv_vbatch(*dims, list(a_soa), list(b_soa))
    _bytes_equal((_materialize(a_soa), a_ref), (_materialize(b_soa), b_ref),
                 (np.stack(piv), np.stack(piv_ref)), (info, info_ref))


# ---------------------------------------------------------------------------
# The layout= knob: conversion happens exactly once at the batch boundary
# ---------------------------------------------------------------------------


class TestLayoutKnob:
    BATCH, N, KL, KU, NRHS = 12, 40, 3, 2, 2

    def _problem(self):
        a = random_band_batch(self.BATCH, self.N, self.KL, self.KU, seed=20)
        b = random_rhs(self.N, self.NRHS, batch=self.BATCH, seed=21)
        return a, b

    def _reference(self):
        a, b = self._problem()
        gbsv_batch(self.N, self.KL, self.KU, self.NRHS, a, None, b)
        return a, b

    def test_invalid_layout_rejected(self):
        a, b = self._problem()
        with pytest.raises(ArgumentError, match="layout"):
            gbsv_batch(self.N, self.KL, self.KU, self.NRHS, a, None, b,
                       layout="diagonal")

    def test_soa_knob_converts_exactly_once(self):
        a_ref, b_ref = self._reference()
        a, b = self._problem()
        stream = Stream(H100_PCIE)
        gbsv_batch(self.N, self.KL, self.KU, self.NRHS, a, None, b,
                   stream=stream, layout="soa")
        recs = _launches(stream)
        # every stage ran SoA-native, and the trace attributes exactly one
        # round-trip conversion (2x the gathered operand bytes)
        assert all(r.soa for r in recs)
        charged = [r.soa_bytes for r in recs if r.soa_bytes > 0]
        assert len(charged) == 1
        assert charged[0] == 2 * (a.nbytes + b.nbytes)
        _bytes_equal((a, a_ref), (b, b_ref))      # results written back

    def test_soa_knob_is_noop_on_interleaved_input(self):
        a_ref, b_ref = self._reference()
        a, b = self._problem()
        a_soa, b_soa = to_interleaved(a), to_interleaved(b)
        stream = Stream(H100_PCIE)
        gbsv_batch(self.N, self.KL, self.KU, self.NRHS, a_soa, None, b_soa,
                   stream=stream, layout="interleaved")
        recs = _launches(stream)
        assert all(r.soa for r in recs)
        assert sum(r.soa_bytes for r in recs) == 0
        _bytes_equal((_materialize(a_soa), a_ref),
                     (_materialize(b_soa), b_ref))

    def test_aos_knob_on_interleaved_input(self):
        a_ref, b_ref = self._reference()
        a, b = self._problem()
        a_soa, b_soa = to_interleaved(a), to_interleaved(b)
        stream = Stream(H100_PCIE)
        gbsv_batch(self.N, self.KL, self.KU, self.NRHS, a_soa, None, b_soa,
                   stream=stream, layout="aos")
        recs = _launches(stream)
        assert not any(r.soa for r in recs)       # classic [vec] inside
        assert sum(r.soa_bytes > 0 for r in recs) == 1
        _bytes_equal((_materialize(a_soa), a_ref),
                     (_materialize(b_soa), b_ref))

    def test_exactly_once_under_chunking(self):
        """Conversion precedes governance: a chunked run still charges a
        single conversion, and every chunk runs SoA-native."""
        a_ref, b_ref = self._reference()
        a, b = self._problem()
        stream = Stream(H100_PCIE)
        gbsv_batch(self.N, self.KL, self.KU, self.NRHS, a, None, b,
                   stream=stream, layout="soa", chunk_hint=4)
        recs = _launches(stream)
        assert len(recs) > 3                      # several chunks ran
        assert all(r.soa for r in recs)
        assert sum(r.soa_bytes > 0 for r in recs) == 1
        _bytes_equal((a, a_ref), (b, b_ref))

    def test_native_chunked_run_needs_no_conversion(self):
        a_ref, b_ref = self._reference()
        a, b = self._problem()
        a_soa, b_soa = to_interleaved(a), to_interleaved(b)
        stream = Stream(H100_PCIE)
        gbsv_batch(self.N, self.KL, self.KU, self.NRHS, a_soa, None, b_soa,
                   stream=stream, chunk_hint=4)
        recs = _launches(stream)
        assert len(recs) > 3 and all(r.soa for r in recs)
        assert sum(r.soa_bytes for r in recs) == 0
        _bytes_equal((_materialize(a_soa), a_ref),
                     (_materialize(b_soa), b_ref))

    def test_gbtrf_layout_knob(self):
        a, _ = self._problem()
        a_ref = a.copy()
        piv_ref, info_ref = gbtrf_batch(self.N, self.N, self.KL, self.KU,
                                        a_ref)
        stream = Stream(H100_PCIE)
        piv, info = gbtrf_batch(self.N, self.N, self.KL, self.KU, a,
                                stream=stream, layout="interleaved")
        recs = _launches(stream)
        assert all(r.soa for r in recs)
        assert sum(r.soa_bytes > 0 for r in recs) == 1
        _bytes_equal((a, a_ref), (np.stack(piv), np.stack(piv_ref)),
                     (info, info_ref))

    def test_gbtrs_layout_knob(self):
        a, b = self._problem()
        piv, _ = gbtrf_batch(self.N, self.N, self.KL, self.KU, a)
        b_ref = b.copy()
        gbtrs_batch("N", self.N, self.KL, self.KU, self.NRHS, a, piv,
                    b_ref, vectorize=False)
        stream = Stream(H100_PCIE)
        gbtrs_batch("N", self.N, self.KL, self.KU, self.NRHS, a, piv, b,
                    stream=stream, layout="soa")
        recs = _launches(stream)
        assert all(r.soa for r in recs)
        assert sum(r.soa_bytes > 0 for r in recs) == 1
        _bytes_equal((b, b_ref))

    def test_vbatch_layout_forwarded_per_group(self):
        a, b = self._problem()
        a_ref, b_ref = a.copy(), b.copy()
        dims = ([self.N] * self.BATCH, [self.KL] * self.BATCH,
                [self.KU] * self.BATCH, [self.NRHS] * self.BATCH)
        gbsv_vbatch(*dims, list(a_ref), list(b_ref))
        stream = Stream(H100_PCIE)
        gbsv_vbatch(*dims, list(a), list(b), stream=stream, layout="soa")
        recs = _launches(stream)
        assert all(r.soa for r in recs)
        _bytes_equal((a, a_ref), (b, b_ref))

    def test_convert_rejects_ragged_operands(self):
        mats = [np.zeros((8, 4)), np.zeros((8, 5))]
        with pytest.raises(ArgumentError, match="uniform"):
            convert_batch_layout(INTERLEAVED, (mats,), batch=2)


# ---------------------------------------------------------------------------
# Fault storm: the SoA route under the resilience layer
# ---------------------------------------------------------------------------


class TestSoaUnderStorm:
    BATCH, N, KL, KU = 32, 96, 3, 2
    PLAN = FaultPlan(seed=99, launch_failure_rate=0.10,
                     max_launch_failures=4, smem_rejections=1,
                     smem_kernels="gbtrs", corrupt_lanes=(3, 17),
                     corrupt_after="gbtrf_window")

    def test_healthy_lanes_bit_identical(self):
        a = random_band_batch(self.BATCH, self.N, self.KL, self.KU, seed=30)
        b = random_rhs(self.N, 1, batch=self.BATCH, seed=31)
        base_a, base_b = a.copy(), b.copy()
        piv0, info0 = gbsv_batch(self.N, self.KL, self.KU, 1, base_a, None,
                                 base_b)
        assert (info0 == 0).all()
        a_soa, b_soa = to_interleaved(a), to_interleaved(b)
        with fault_injection(H100_PCIE, self.PLAN):
            piv, info, report = gbsv_batch(self.N, self.KL, self.KU, 1,
                                           a_soa, None, b_soa,
                                           resilient=True)
        assert report.ok and report.faults_tolerated > 0
        got_a, got_b = _materialize(a_soa), _materialize(b_soa)
        for k in range(self.BATCH):
            if k in report.quarantined:
                continue
            _bytes_equal((got_a[k], base_a[k]), (got_b[k], base_b[k]),
                         (piv[k], piv0[k]))


# ---------------------------------------------------------------------------
# Serving layer: layout knob forwarded, cache stays layout-transparent
# ---------------------------------------------------------------------------


class TestServeLayout:
    N, KL, KU = 32, 2, 3

    def _direct(self, ab, b):
        abf, bf = ab.copy(), b.copy()[:, None]
        piv, info = gbtrf_batch(self.N, self.N, self.KL, self.KU, [abf],
                                batch=1)
        assert int(info[0]) == 0
        gbtrs_batch("N", self.N, self.KL, self.KU, 1, [abf], piv, [bf],
                    batch=1)
        return bf[:, 0]

    def test_service_solves_and_caches_under_soa(self):
        rng = np.random.default_rng(40)
        from repro.band.generate import random_band
        ab = random_band(self.N, self.KL, self.KU, seed=rng)
        b1 = rng.standard_normal((self.N,))
        b2 = rng.standard_normal((self.N,))
        with SolverService(layout="interleaved") as svc:
            h1 = svc.submit(self.KL, self.KU, ab, b1)
            x1 = h1.result()
            h2 = svc.submit(self.KL, self.KU, ab, b2)   # cache hit
            x2 = h2.result()
            rep = svc.report()
        assert rep.cache_hits == 1 and rep.factorizations == 1
        _bytes_equal((x1, self._direct(ab, b1)),
                     (x2, self._direct(ab, b2)))


# ---------------------------------------------------------------------------
# Refinement and condition estimation: SoA parity + the layout= knob
# ---------------------------------------------------------------------------


class TestRefineConditionLayout:
    """``gbrfs_batch``/``gbcon_batch`` accept interleaved stacks natively
    and stage through the ``layout=`` knob with bit-identical results."""

    BATCH, N, KL, KU, NRHS = 7, 28, 2, 3, 2

    def _problem(self):
        a = random_band_batch(self.BATCH, self.N, self.KL, self.KU, seed=50)
        b = random_rhs(self.N, self.NRHS, batch=self.BATCH, seed=51)
        fact = a.copy()
        piv, info = gbtrf_batch(self.N, self.N, self.KL, self.KU, fact)
        assert (info == 0).all()
        x = b.copy()
        gbtrs_batch("N", self.N, self.KL, self.KU, self.NRHS, fact, piv, x)
        # Knock the solution off by a deterministic perturbation so the
        # refinement loop has real work to do in every lane.
        rng = np.random.default_rng(52)
        x += 1e-3 * rng.standard_normal(x.shape)
        return a, fact, piv, b, x

    def _refine(self, a, fact, piv, b, x, **kw):
        res = gbrfs_batch(self.N, self.KL, self.KU, self.NRHS, a, fact,
                          piv, b, x, **kw)
        return res

    @pytest.mark.parametrize("knob", [None, "soa", "interleaved"])
    def test_gbrfs_soa_parity(self, knob):
        a, fact, piv, b, x = self._problem()
        x_ref = x.copy()
        ref = self._refine(a, fact, piv, b, x_ref)
        a_soa, fact_soa = to_interleaved(a), to_interleaved(fact)
        b_soa, x_soa = to_interleaved(b), to_interleaved(x)
        got = self._refine(a_soa, fact_soa, piv, b_soa, x_soa,
                           layout=knob)
        _bytes_equal((_materialize(x_soa), x_ref))
        for r_ref, r_got in zip(ref, got):
            assert r_got.iterations == r_ref.iterations
            assert r_got.converged == r_ref.converged
            _bytes_equal((r_got.berr, r_ref.berr))

    def test_gbrfs_layout_knob_on_lane_major(self):
        a, fact, piv, b, x = self._problem()
        x_ref = x.copy()
        ref = self._refine(a, fact, piv, b, x_ref)
        x_knob = x.copy()
        got = self._refine(a.copy(), fact.copy(), piv, b.copy(), x_knob,
                           layout="soa")
        _bytes_equal((x_knob, x_ref))
        for r_ref, r_got in zip(ref, got):
            _bytes_equal((r_got.berr, r_ref.berr))

    @pytest.mark.parametrize("knob", [None, "soa", "aos"])
    def test_gbcon_soa_parity(self, knob):
        from repro.band.ops import band_norm_1
        a, fact, piv, _b, _x = self._problem()
        anorms = [band_norm_1(a[k], self.N, self.KL, self.KU)
                  for k in range(self.BATCH)]
        ref = gbcon_batch("1", self.N, self.KL, self.KU, fact, piv, anorms)
        fact_soa = to_interleaved(fact)
        got = gbcon_batch("1", self.N, self.KL, self.KU, fact_soa, piv,
                          anorms, layout=knob)
        _bytes_equal((got, ref))

    def test_invalid_layout_rejected(self):
        a, fact, piv, b, x = self._problem()
        with pytest.raises(ArgumentError, match="layout"):
            self._refine(a, fact, piv, b, x, layout="diagonal")
        with pytest.raises(ArgumentError, match="layout"):
            gbcon_batch("1", self.N, self.KL, self.KU, fact, piv,
                        [1.0] * self.BATCH, layout="diagonal")
