"""Blocked transposed band solves (LAPACK GBTRS trans='T'/'C' kernels)."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense
from repro.band.generate import random_band_batch, random_rhs
from repro.core.gbtrf import gbtrf_batch
from repro.core.gbtrs import gbtrs_batch
from repro.core.solve_blocks import gbtrs_unblocked
from repro.gpusim import H100_PCIE, Stream

from conftest import BAND_CONFIGS


def _factored(n, kl, ku, nrhs, batch=2, dtype=np.float64, seed=0):
    a = random_band_batch(batch, n, kl, ku, dtype=dtype, seed=seed)
    orig = a.copy()
    b = random_rhs(n, nrhs, batch=batch, dtype=dtype, seed=seed + 1)
    piv, info = gbtrf_batch(n, n, kl, ku, a)
    return orig, a, piv, b


@pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
def test_trans_blocked_equals_unblocked(n, kl, ku):
    orig, a, piv, b = _factored(n, kl, ku, 2, seed=n)
    expect = [gbtrs_unblocked("T", n, kl, ku, a[k], piv[k], b[k].copy())
              for k in range(2)]
    x = b.copy()
    gbtrs_batch("T", n, kl, ku, 2, a, piv, x, method="blocked")
    for k in range(2):
        np.testing.assert_allclose(x[k], expect[k], atol=0)


@pytest.mark.parametrize("nb", [1, 3, 8, 64])
def test_trans_any_blocking(nb):
    n, kl, ku = 29, 3, 2
    orig, a, piv, b = _factored(n, kl, ku, 2, seed=nb)
    expect = [gbtrs_unblocked("T", n, kl, ku, a[k], piv[k], b[k].copy())
              for k in range(2)]
    x = b.copy()
    gbtrs_batch("T", n, kl, ku, 2, a, piv, x, method="blocked", nb=nb)
    np.testing.assert_allclose(x[0], expect[0], atol=0)


def test_conj_trans_blocked_complex():
    n, kl, ku = 20, 2, 3
    orig, a, piv, b = _factored(n, kl, ku, 2, dtype=np.complex128, seed=5)
    x = b.copy()
    gbtrs_batch("C", n, kl, ku, 2, a, piv, x, method="blocked")
    dense = band_to_dense(orig[0], n, kl, ku)
    np.testing.assert_allclose(dense.conj().T @ x[0], b[0], atol=1e-10)


def test_trans_solves_the_transposed_system():
    n, kl, ku = 24, 2, 3
    orig, a, piv, b = _factored(n, kl, ku, 1, seed=7)
    x = b.copy()
    gbtrs_batch("T", n, kl, ku, 1, a, piv, x)
    dense = band_to_dense(orig[0], n, kl, ku)
    np.testing.assert_allclose(dense.T @ x[0], b[0], atol=1e-11)


def test_auto_dispatch_uses_blocked_kernels_for_trans():
    n, kl, ku = 32, 2, 3
    orig, a, piv, b = _factored(n, kl, ku, 1, seed=9)
    stream = Stream(H100_PCIE)
    gbtrs_batch("T", n, kl, ku, 1, a, piv, b.copy(), stream=stream)
    names = [r.kernel_name for r in stream.records]
    assert names == ["gbtrs_transU_blocked", "gbtrs_transL_blocked"]


def test_trans_swaps_touch_finalised_rows_correctly():
    """Regression: L^T swaps reach kl rows past the current block, into
    rows a later block already wrote back — the overlap re-write path."""
    n, kl, ku, nb = 40, 4, 1, 5      # many swaps crossing block edges
    orig, a, piv, b = _factored(n, kl, ku, 1, seed=11)
    # Ensure some pivots actually cross block boundaries.
    crossing = any(int(piv[0][j]) // nb != j // nb for j in range(n))
    assert crossing, "test setup should produce boundary-crossing pivots"
    expect = gbtrs_unblocked("T", n, kl, ku, a[0], piv[0], b[0].copy())
    x = b.copy()
    gbtrs_batch("T", n, kl, ku, 1, a, piv, x, method="blocked", nb=nb)
    np.testing.assert_allclose(x[0], expect, atol=0)


def test_smem_budgets():
    from repro.core.gbtrs_blocked import BlockedTransLKernel, BlockedTransUKernel
    n, kl, ku, nrhs, nb = 64, 2, 3, 2, 16
    a = random_band_batch(1, n, kl, ku, seed=13)
    piv = [np.zeros(n, dtype=np.int64)]
    b = [np.zeros((n, nrhs))]
    u = BlockedTransUKernel(n, kl, ku, nrhs, list(a), piv, b, nb=nb)
    l = BlockedTransLKernel(n, kl, ku, nrhs, list(a), piv, b, nb=nb)
    assert u.smem_bytes() == (nb + kl + ku) * nrhs * 8
    assert l.smem_bytes() == (nb + kl) * nrhs * 8
