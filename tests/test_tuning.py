"""Tuning framework: sweep, tables, serialisation, lookup, defaults."""

import numpy as np
import pytest

from repro.gpusim import H100_PCIE, MI250X_GCD
from repro.tuning import (
    FUSED_CUTOFF,
    FUSED_GBSV_CUTOFF,
    SweepConfig,
    TuningEntry,
    TuningTable,
    candidate_nbs,
    candidate_threads,
    get_active_table,
    heuristic_window_params,
    load_shipped_table,
    run_sweep,
    set_active_table,
    sweep_band_pattern,
    window_params,
)


class TestHeuristics:
    @pytest.mark.parametrize("kl,ku", [(0, 0), (2, 3), (10, 7), (32, 32)])
    def test_minimum_thread_constraint(self, kl, ku):
        for dev in (H100_PCIE, MI250X_GCD):
            nb, threads = heuristic_window_params(dev, kl, ku)
            assert threads >= kl + 1
            assert nb >= 1

    def test_wide_band_gets_more_threads(self):
        _, thin = heuristic_window_params(H100_PCIE, 1, 1)
        _, wide = heuristic_window_params(H100_PCIE, 24, 24)
        assert wide > thin

    def test_cutoffs_match_paper(self):
        assert FUSED_CUTOFF == 64
        assert FUSED_GBSV_CUTOFF == 64


class TestSweep:
    def test_candidates_respect_minimum(self):
        for t in candidate_threads(H100_PCIE, 10, 7):
            assert t >= 11
        assert all(nb >= 1 for nb in candidate_nbs(10, 7))

    def test_sweep_returns_feasible_best(self):
        e = sweep_band_pattern(MI250X_GCD, 10, 7)
        assert e.kl == 10 and e.ku == 7
        assert e.threads >= 11
        assert e.time > 0

    def test_sweep_table_roundtrip(self, tmp_path):
        cfg = SweepConfig(device=H100_PCIE, kl_range=[0, 2],
                          ku_range=[0, 3])
        table = run_sweep(cfg)
        assert len(table.entries) == 4
        path = tmp_path / "table.json"
        table.save(path)
        loaded = TuningTable.load(path)
        assert loaded.device_name == "h100-pcie"
        assert loaded.entries == table.entries

    def test_best_entry_actually_best_among_candidates(self):
        from repro.tuning.sweep import _config_time
        kl, ku = 4, 4
        e = sweep_band_pattern(H100_PCIE, kl, ku)
        for nb in candidate_nbs(kl, ku)[:3]:
            for t in candidate_threads(H100_PCIE, kl, ku)[:3]:
                total = sum(_config_time(H100_PCIE, n, kl, ku, nb, t,
                                         1000, 8) for n in (256, 1024))
                assert e.time <= total * (1 + 1e-12)


class TestTableLookup:
    def test_exact_hit(self):
        t = TuningTable("dev")
        t.add(TuningEntry(2, 3, nb=24, threads=32, time=1.0))
        assert t.lookup(2, 3) == (24, 32)

    def test_nearest_neighbour(self):
        t = TuningTable("dev")
        t.add(TuningEntry(2, 3, nb=24, threads=32, time=1.0))
        t.add(TuningEntry(20, 20, nb=8, threads=256, time=1.0))
        assert t.lookup(3, 3) == (24, 32)
        assert t.lookup(18, 22) == (8, 256)

    def test_empty_table(self):
        assert TuningTable("dev").lookup(1, 1) is None


class TestActiveTables:
    def test_shipped_tables_load(self):
        for name in ("h100-pcie", "mi250x-gcd"):
            table = load_shipped_table(name)
            assert table is not None
            assert table.device_name == name
            assert (2, 3) in table.entries
            assert (10, 7) in table.entries

    def test_missing_table_is_none(self):
        assert load_shipped_table("no-such-device") is None

    def test_set_active_table_overrides(self):
        custom = TuningTable("h100-pcie")
        custom.add(TuningEntry(2, 3, nb=5, threads=99, time=1.0))
        previous = get_active_table("h100-pcie")
        try:
            set_active_table("h100-pcie", custom)
            assert window_params(H100_PCIE, 2, 3) == (5, 99)
        finally:
            if previous is not None:
                set_active_table("h100-pcie", previous)

    def test_window_params_functional(self):
        """Parameters coming out of the tables drive a correct kernel."""
        from repro.band.generate import random_band_batch
        from repro.core.gbtf2 import gbtf2
        from repro.core.gbtrf import gbtrf_batch
        n, kl, ku = 40, 10, 7
        a = random_band_batch(1, n, kl, ku, seed=1)
        ref = a[0].copy()
        gbtf2(n, n, kl, ku, ref)
        gbtrf_batch(n, n, kl, ku, a, method="window")
        np.testing.assert_allclose(a[0], ref, atol=0)
