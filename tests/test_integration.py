"""End-to-end integration tests across packages.

Exercises realistic pipelines: application workload generation -> batched
band solves on both simulated devices -> accuracy checks against dense
linear algebra -> launch traces, plus a size sweep that crosses every
dispatcher boundary.
"""

import numpy as np
import pytest

from repro import (
    H100_PCIE,
    MI250X_GCD,
    Stream,
    band_to_dense,
    gbsv_batch,
    gbtrf_batch,
    gbtrs_batch,
    random_band_batch,
    random_rhs,
    solve_residual,
)
from repro.apps import chain_mechanism, integrate_batch, pele_batch, sinusoidal_states, xgc_batch
from repro.gpusim import summarize

from conftest import scipy_gbtrf, scipy_gbtrs


class TestDispatcherSweep:
    """Sizes crossing every dispatch boundary must agree with LAPACK."""

    @pytest.mark.parametrize("n", [4, 16, 63, 64, 65, 96, 130])
    @pytest.mark.parametrize("kl,ku", [(2, 3), (10, 7)])
    def test_auto_matches_lapack(self, n, kl, ku):
        batch = 2
        a = random_band_batch(batch, n, kl, ku, seed=n * 13 + kl)
        b = random_rhs(n, 1, batch=batch, seed=n * 13 + kl + 1)
        refs = []
        for k in range(batch):
            lu, piv, info = scipy_gbtrf(a[k].copy(), kl, ku, n, n)
            x, _ = scipy_gbtrs(lu, kl, ku, b[k].copy(), piv)
            refs.append(x)
        x = b.copy()
        piv, info = gbsv_batch(n, kl, ku, 1, a, None, x)
        assert (info == 0).all()
        for k in range(batch):
            np.testing.assert_allclose(x[k], refs[k], atol=1e-10,
                                       rtol=1e-8)


class TestPelePipeline:
    def test_full_pipeline_both_devices(self):
        pb = pele_batch(16, n_species=54, coupling=3, h=1e-3, seed=0)
        for device in (H100_PCIE, MI250X_GCD):
            a, x = pb.a_band.copy(), pb.b.copy()
            stream = Stream(device)
            piv, info = gbsv_batch(pb.n, pb.kl, pb.ku, 1, a, None, x,
                                   device=device, stream=stream)
            assert (info == 0).all()
            worst = max(
                solve_residual(pb.a_band[k], x[k], pb.b[k], pb.kl, pb.ku)
                for k in range(pb.batch))
            assert worst < 1e-12
            assert stream.elapsed > 0


class TestXgcPipeline:
    def test_factor_once_solve_many(self):
        """The WDMApp multi-species call pattern: 1 factor + S solves."""
        xb = xgc_batch(batch=8, n_elements=32, seed=1)  # n=97 > fused cutoff
        a = xb.a_band.copy()
        stream = Stream(H100_PCIE)
        piv, info = gbtrf_batch(xb.n, xb.n, xb.kl, xb.ku, a,
                                device=H100_PCIE, stream=stream)
        assert (info == 0).all()
        rng = np.random.default_rng(2)
        dense0 = band_to_dense(xb.a_band[0], xb.n, xb.kl, xb.ku)
        for _ in range(3):
            b = rng.standard_normal((xb.batch, xb.n, 1))
            x = b.copy()
            gbtrs_batch("N", xb.n, xb.kl, xb.ku, 1, a, piv, x,
                        device=H100_PCIE, stream=stream)
            np.testing.assert_allclose(dense0 @ x[0], b[0], atol=1e-10)
        # 1 factor launch + 3 x (fwd + bwd) solve launches.
        assert stream.launch_count() == 1 + 3 * 2
        # Uniform contiguous stacks take the batch-interleaved path.
        names = {s.name for s in summarize([stream])}
        assert names == {"gbtrf_window[vec]", "gbtrs_fwd_blocked[vec]",
                         "gbtrs_bwd_blocked[vec]"}


class TestReactEvalPipeline:
    def test_integration_drives_batched_solver(self):
        mech = chain_mechanism(10, coupling=2, rate_spread=3.0, seed=3)
        y0 = sinusoidal_states(6, 10)
        stream = Stream(H100_PCIE)
        res = integrate_batch(mech, y0, 5e-3, dt=1e-3, device=H100_PCIE,
                              stream=stream)
        assert res.stats.converged
        assert res.stats.solver_calls > 0
        # Small systems (n=10) go through the fused GBSV kernel, on the
        # batch-interleaved path (uniform contiguous batch).
        names = {s.name for s in summarize([stream])}
        assert names == {"gbsv_fused[vec]"}

    def test_integration_matches_dense_reference(self):
        """The banded Newton path reproduces a dense-solver integrator."""
        mech = chain_mechanism(8, coupling=2, rate_spread=2.0, seed=4)
        from repro.apps.chemistry import jacobian, rate
        y0 = sinusoidal_states(2, 8)
        t_end, dt = 3e-3, 1e-3

        # Dense reference backward Euler.
        y_ref = y0.copy()
        for _ in range(3):
            y_new = y_ref.copy()
            for _ in range(10):
                r = np.stack([y_new[k] - y_ref[k] - dt * rate(mech, y_new[k])
                              for k in range(2)])
                if np.abs(r).max() <= 1e-10:
                    break
                for k in range(2):
                    jn = np.eye(8) - dt * jacobian(mech, y_new[k])
                    y_new[k] += np.linalg.solve(jn, -r[k])
            y_ref = y_new

        res = integrate_batch(mech, y0, t_end, dt=dt)
        np.testing.assert_allclose(res.y, y_ref, atol=1e-9)


class TestMixedPrecisionPipeline:
    def test_float32_solves_with_relaxed_accuracy(self):
        n, kl, ku = 32, 2, 3
        a64 = random_band_batch(4, n, kl, ku, seed=5)
        a32 = a64.astype(np.float32)
        b64 = random_rhs(n, 1, batch=4, seed=6)
        b32 = b64.astype(np.float32)
        x64, x32 = b64.copy(), b32.copy()
        gbsv_batch(n, kl, ku, 1, a64.copy(), None, x64)
        piv, info = gbsv_batch(n, kl, ku, 1, a32.copy(), None, x32)
        assert (info == 0).all()
        assert x32.dtype == np.float32
        np.testing.assert_allclose(x32, x64, atol=1e-2, rtol=1e-2)
