"""Host <-> device transfer modeling."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpusim import (
    DeviceBuffer,
    H100_PCIE,
    MI250X_GCD,
    Stream,
    batch_upload_time,
    format_trace,
    memcpy_d2h,
    memcpy_h2d,
    transfer_time,
)


class TestTransferTime:
    def test_latency_plus_bandwidth(self):
        t = transfer_time(H100_PCIE, 10 ** 9)
        assert t == pytest.approx(H100_PCIE.transfer_latency
                                  + 1e9 / H100_PCIE.h2d_bandwidth)

    def test_direction_selects_bandwidth(self):
        assert transfer_time(H100_PCIE, 1 << 30, direction="d2h") == \
            pytest.approx(H100_PCIE.transfer_latency
                          + (1 << 30) / H100_PCIE.d2h_bandwidth)

    def test_unknown_direction(self):
        with pytest.raises(DeviceError):
            transfer_time(H100_PCIE, 100, direction="p2p")

    def test_h100_link_faster_than_mi250x(self):
        big = 1 << 30
        assert transfer_time(H100_PCIE, big) < transfer_time(MI250X_GCD,
                                                             big)

    def test_tiny_copy_dominated_by_latency(self):
        t = transfer_time(H100_PCIE, 8)
        assert t == pytest.approx(H100_PCIE.transfer_latency, rel=1e-3)


class TestMemcpy:
    def test_roundtrip_data_and_timeline(self):
        stream = Stream(H100_PCIE)
        host = np.arange(64.0).reshape(8, 8)
        buf = DeviceBuffer((8, 8))
        rec_up = memcpy_h2d(H100_PCIE, buf, host, stream=stream)
        out, rec_down = memcpy_d2h(H100_PCIE, buf, stream=stream)
        np.testing.assert_array_equal(out, host)
        assert stream.launch_count() == 2
        assert stream.elapsed == pytest.approx(rec_up.time + rec_down.time)
        assert rec_up.nbytes == host.nbytes
        assert rec_up.bandwidth > 0

    def test_d2h_into_preallocated(self):
        buf = DeviceBuffer((4,))
        buf.upload(np.array([1.0, 2.0, 3.0, 4.0]))
        out = np.zeros(4)
        got, _ = memcpy_d2h(H100_PCIE, buf, out=out)
        assert got is out
        np.testing.assert_array_equal(out, [1, 2, 3, 4])

    def test_transfers_appear_in_traces(self):
        stream = Stream(H100_PCIE)
        buf = DeviceBuffer((16,))
        memcpy_h2d(H100_PCIE, buf, np.zeros(16), stream=stream)
        text = format_trace([stream])
        assert "memcpy_h2d" in text


class TestBatchUpload:
    def test_matches_manual_computation(self):
        t = batch_upload_time(H100_PCIE, batch=1000, n=512, kl=2, ku=3)
        payload = 1000 * 8 * 512 * 8
        assert t == pytest.approx(transfer_time(H100_PCIE, payload))

    def test_rhs_adds_second_copy(self):
        t0 = batch_upload_time(H100_PCIE, batch=100, n=64, kl=2, ku=3)
        t1 = batch_upload_time(H100_PCIE, batch=100, n=64, kl=2, ku=3,
                               nrhs=1)
        assert t1 > t0

    def test_staging_vs_kernel_time_ratio_is_sane(self):
        """Upload of a batch costs the same order as factorizing it."""
        from repro.bench import time_gbtrf
        t_up = batch_upload_time(H100_PCIE, batch=1000, n=512, kl=2, ku=3)
        t_k = time_gbtrf(H100_PCIE, 512, 2, 3)
        assert 0.05 < t_up / t_k < 20
