"""RCM reordering, batched GBMV kernel, and the occupancy advisor."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.band import (
    BandedSystem,
    band_to_dense,
    bandwidth_after,
    rcm_ordering,
    sparse_to_band,
    unpermute,
)
from repro.band.generate import random_band_batch, random_rhs
from repro.core import gbmv_batch, gbsv
from repro.errors import ArgumentError, SharedMemoryError
from repro.gpusim import H100_PCIE, MI250X_GCD, Stream, occupancy, suggest_block_size


def _shuffled_banded(n=50, width=3, seed=0):
    """A banded SPD-ish matrix hidden behind a random permutation."""
    rng = np.random.default_rng(seed)
    diags = [rng.standard_normal(n - abs(d)) for d in range(-width, 1)]
    base = sp.diags(diags, list(range(-width, 1)), shape=(n, n)).tocsr()
    base = base + base.T + sp.eye(n) * (2 * width + 4)
    shuffle = rng.permutation(n)
    return sp.csr_matrix(base.toarray()[np.ix_(shuffle, shuffle)]), width


class TestRcm:
    def test_recovers_hidden_band(self):
        a, width = _shuffled_banded()
        natural = bandwidth_after(a, np.arange(a.shape[0]))
        perm = rcm_ordering(a)
        reordered = bandwidth_after(a, perm)
        assert max(reordered) <= 2 * width       # near-optimal
        assert max(natural) > 4 * width          # the shuffle was real

    def test_perm_is_permutation(self):
        a, _ = _shuffled_banded(seed=1)
        perm = rcm_ordering(a)
        assert sorted(perm) == list(range(a.shape[0]))

    def test_accepts_dense_input(self):
        a, _ = _shuffled_banded(seed=2)
        perm_s = rcm_ordering(a)
        perm_d = rcm_ordering(a.toarray())
        np.testing.assert_array_equal(perm_s, perm_d)

    def test_bandwidth_after_empty(self):
        assert bandwidth_after(sp.csr_matrix((4, 4)), np.arange(4)) == (0, 0)


class TestSparseToBand:
    def test_end_to_end_solve(self):
        a, _ = _shuffled_banded(seed=3)
        n = a.shape[0]
        system = sparse_to_band(a)
        assert isinstance(system, BandedSystem)
        b = np.random.default_rng(4).standard_normal(n)
        x_p, piv, info = gbsv(system.n, system.kl, system.ku,
                              system.ab.copy(),
                              system.permute_rhs(b).copy())
        assert info == 0
        x = system.unpermute_solution(x_p)
        np.testing.assert_allclose(a @ x, b, atol=1e-10)

    def test_band_values_match_permuted_matrix(self):
        a, _ = _shuffled_banded(seed=5)
        system = sparse_to_band(a)
        dense = band_to_dense(system.ab, system.n, system.kl, system.ku)
        expected = a.toarray()[np.ix_(system.perm, system.perm)]
        np.testing.assert_allclose(dense, expected, atol=0)

    def test_reorder_false_keeps_natural_order(self):
        a, _ = _shuffled_banded(seed=6)
        system = sparse_to_band(a, reorder=False)
        np.testing.assert_array_equal(system.perm, np.arange(a.shape[0]))

    def test_fill_ratio_guard(self):
        # A bordered matrix (dense last row/col) is not band-compressible.
        n = 40
        a = sp.eye(n).tolil()
        a[n - 1, :] = 1.0
        a[:, n - 1] = 1.0
        with pytest.raises(ArgumentError, match="band-compressible"):
            sparse_to_band(sp.csr_matrix(a), max_fill_ratio=2.0)

    def test_unpermute_roundtrip(self):
        perm = np.random.default_rng(7).permutation(9)
        x = np.arange(9.0)
        np.testing.assert_array_equal(unpermute(x[perm], perm), x)


class TestGbmvBatch:
    def test_matches_dense(self):
        batch, n, kl, ku = 4, 14, 2, 3
        a = random_band_batch(batch, n, kl, ku, seed=8)
        x = [random_rhs(n, 1, seed=10 + k)[:, 0] for k in range(batch)]
        y = [random_rhs(n, 1, seed=20 + k)[:, 0] for k in range(batch)]
        y0 = [v.copy() for v in y]
        gbmv_batch("N", n, n, kl, ku, 1.5, a, x, -0.5, y)
        for k in range(batch):
            dense = band_to_dense(a[k], n, kl, ku)
            np.testing.assert_allclose(
                y[k], 1.5 * (dense @ x[k]) - 0.5 * y0[k], atol=1e-12)

    def test_trans_and_blocks(self):
        batch, n, kl, ku, nrhs = 3, 10, 1, 2, 2
        a = random_band_batch(batch, n, kl, ku, seed=9)
        x = [random_rhs(n, nrhs, seed=30 + k) for k in range(batch)]
        y = [np.zeros((n, nrhs)) for _ in range(batch)]
        gbmv_batch("T", n, n, kl, ku, 1.0, a, x, 0.0, y)
        dense = band_to_dense(a[0], n, kl, ku)
        np.testing.assert_allclose(y[0], dense.T @ x[0], atol=1e-12)

    def test_memory_bound_cost(self):
        from repro.core.gbmv_batch import BatchedGbmvKernel
        from repro.types import Trans
        n, kl, ku = 1024, 2, 3
        a = [np.zeros((8, n))] * 1000
        x = [np.zeros(n)] * 1000
        k = BatchedGbmvKernel(Trans.NO_TRANS, n, n, kl, ku, 1.0, a, x,
                              0.0, x)
        timing = k.timing(H100_PCIE)
        assert not timing.latency_bound

    def test_shape_validation(self):
        a = random_band_batch(2, 8, 1, 1, seed=11)
        with pytest.raises(ArgumentError):
            gbmv_batch("N", 8, 8, 1, 1, 1.0, a, [np.zeros(7)] * 2, 0.0,
                       [np.zeros(8)] * 2)

    def test_residual_use_case(self):
        """The gbrfs-style device-side residual: r = b - A x."""
        from repro.core import gbsv_batch
        batch, n, kl, ku = 3, 24, 2, 3
        a = random_band_batch(batch, n, kl, ku, seed=12)
        b = random_rhs(n, 1, batch=batch, seed=13)
        x = b.copy()
        orig = a.copy()
        gbsv_batch(n, kl, ku, 1, a, None, x)
        r = [b[k].copy() for k in range(batch)]
        gbmv_batch("N", n, n, kl, ku, -1.0, orig, [x[k] for k in range(batch)],
                   1.0, r)
        assert max(np.abs(v).max() for v in r) < 1e-11


class TestSuggestBlockSize:
    def test_tiny_smem_saturates_the_sm(self):
        threads, blocks = suggest_block_size(H100_PCIE, 1024)
        # With negligible shared memory the SM fills completely: the block
        # limit (32) times the block size reaches the 2048-thread cap.
        assert blocks == H100_PCIE.max_blocks_per_sm
        assert threads * blocks == H100_PCIE.max_threads_per_sm

    def test_huge_smem_forces_one_block(self):
        threads, blocks = suggest_block_size(MI250X_GCD, 40 * 1024)
        assert blocks == 1
        assert threads == MI250X_GCD.max_threads_per_block

    def test_respects_min_threads(self):
        threads, _ = suggest_block_size(H100_PCIE, 1024, min_threads=100)
        assert threads >= 100
        assert threads % H100_PCIE.warp_size == 0

    def test_over_limit_raises(self):
        with pytest.raises(SharedMemoryError):
            suggest_block_size(MI250X_GCD, 100 * 1024)

    def test_suggestion_is_optimal_among_warp_multiples(self):
        smem = 20 * 1024
        threads, blocks = suggest_block_size(MI250X_GCD, smem)
        best = blocks * threads
        t = MI250X_GCD.warp_size
        while t <= MI250X_GCD.max_threads_per_block:
            occ = occupancy(MI250X_GCD, t, smem)
            assert occ.blocks_per_sm * t <= best
            t += MI250X_GCD.warp_size
