"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.convert import band_to_dense
from repro.band.generate import random_band, random_rhs


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _fresh_memory_pools():
    """Each test sees fresh device memory pools (no cross-test residency).

    Pools are keyed per device and pick up ``REPRO_GLOBAL_MEM_BYTES`` at
    creation; resetting both before and after keeps tests order-independent
    even when one monkeypatches the environment.
    """
    from repro.gpusim.memory import reset_memory_pools
    reset_memory_pools()
    yield
    reset_memory_pools()


@pytest.fixture(autouse=True)
def _fresh_device_health():
    """Each test sees empty per-device health trackers."""
    from repro.gpusim.device import reset_device_health
    reset_device_health()
    yield
    reset_device_health()


def scipy_gbtrf(ab: np.ndarray, kl: int, ku: int, m: int, n: int):
    """Ground-truth LAPACK factorization via scipy (0-based pivots)."""
    from scipy.linalg import lapack
    lu, ipiv, info = lapack.dgbtrf(np.asfortranarray(ab), kl, ku, m=m, n=n)
    return lu, np.asarray(ipiv, dtype=np.int64), int(info)


def scipy_gbtrs(lu: np.ndarray, kl: int, ku: int, b: np.ndarray,
                ipiv: np.ndarray, trans: int = 0):
    """Ground-truth LAPACK solve via scipy (expects 0-based pivots)."""
    from scipy.linalg import lapack
    x, info = lapack.dgbtrs(np.asfortranarray(lu), kl, ku,
                            np.asfortranarray(b),
                            np.asarray(ipiv, dtype=np.int32), trans=trans)
    return x, int(info)


def dense_of(ab: np.ndarray, kl: int, ku: int, m: int | None = None):
    """Dense matrix of a factor-layout band array (original band only)."""
    m = ab.shape[1] if m is None else m
    return band_to_dense(ab, m, kl, ku)


def make_system(n, kl, ku, nrhs=1, seed=0, dtype=np.float64):
    """A random band system (factor layout) plus RHS."""
    ab = random_band(n, kl, ku, dtype=dtype, seed=seed)
    b = random_rhs(n, nrhs, dtype=dtype, seed=seed + 1)
    return ab, b


# A representative grid of band configurations, including the paper's two
# headline bands, degenerate bands, and bands wider than the matrix.
BAND_CONFIGS = [
    (1, 0, 0),
    (5, 0, 2),
    (5, 2, 0),
    (9, 2, 3),
    (12, 10, 7),
    (20, 4, 4),
    (33, 1, 1),
    (17, 5, 2),
    (10, 15, 12),     # band wider than the matrix
    (64, 32, 32),
]
