"""Bucketed vectorization of non-uniform and pointer-array batches.

``gbtrf_vbatch`` / ``gbsv_vbatch`` (grouped) and ``gbtrf_vbatch_fused``
(single-kernel) both expose a ``vectorize`` keyword; the vectorized path
buckets lanes by configuration and must be bit-identical to the per-block
loop — including singular lanes inside a bucket, ragged bucket sizes and
scattered (pointer-array) storage.  Dispatch/attribution rules for the
gather/pack stage are pinned here; uniform-batch coverage lives in
``tests/test_vectorized.py``.
"""

import numpy as np
import pytest

from repro.band.convert import dense_to_band
from repro.band.generate import random_band, random_rhs
from repro.core import gbtrf_batch
from repro.core.batched import gbsv_vbatch, gbtrf_vbatch
from repro.core.gbtrf_vbatch_kernel import gbtrf_vbatch_fused
from repro.errors import ArgumentError, DeviceError
from repro.gpusim import H100_PCIE, PointerArray, Stream

DTYPES = [np.float64, np.complex128]
DTYPE_IDS = [np.dtype(d).name for d in DTYPES]


def _bytes_equal(*pairs):
    for got, ref in pairs:
        assert np.asarray(got).tobytes() == np.asarray(ref).tobytes()


def _ragged_problems(dtype=np.float64, seed=0):
    """Mixed-shape batch whose buckets have ragged sizes 1, 2 and 5."""
    configs = ([(24, 2, 3)] * 5 + [(16, 1, 1)] * 2 + [(40, 4, 2)])
    rng = np.random.default_rng(seed)
    mats = [random_band(n, kl, ku, dtype=dtype, seed=rng)
            for n, kl, ku in configs]
    return configs, mats


def _run_both(fn, configs, mats, **kw):
    """Run ``fn`` with vectorize=False and =True on fresh copies."""
    out = []
    for vec in (False, True):
        ms = [np.asarray(a).copy() for a in mats]
        piv, info = fn([c[0] for c in configs], [c[0] for c in configs],
                       [c[1] for c in configs], [c[2] for c in configs],
                       ms, vectorize=vec, **kw)
        out.append((ms, piv, info))
    return out


class TestGbtrfVbatchVectorized:
    @pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
    def test_ragged_buckets_bitwise(self, dtype):
        configs, mats = _ragged_problems(dtype)
        (m_ref, p_ref, i_ref), (m_vec, p_vec, i_vec) = _run_both(
            gbtrf_vbatch, configs, mats)
        for k in range(len(configs)):
            _bytes_equal((m_vec[k], m_ref[k]), (p_vec[k], p_ref[k]))
        _bytes_equal((i_vec, i_ref))

    @pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
    def test_fused_ragged_buckets_bitwise(self, dtype):
        configs, mats = _ragged_problems(dtype, seed=3)
        (m_ref, p_ref, i_ref), (m_vec, p_vec, i_vec) = _run_both(
            gbtrf_vbatch_fused, configs, mats)
        for k in range(len(configs)):
            _bytes_equal((m_vec[k], m_ref[k]), (p_vec[k], p_ref[k]))
        _bytes_equal((i_vec, i_ref))

    def test_singular_lane_inside_bucket(self):
        """A singular lane sharing a bucket with healthy lanes must report
        its own info without contaminating bucket-mates."""
        n, kl, ku = 18, 2, 2
        rng = np.random.default_rng(7)
        mats = [random_band(n, kl, ku, seed=rng) for _ in range(4)]
        sing = np.eye(n)
        sing[5, 5] = 0.0            # zero pivot, no fill-in to repair it
        mats[2] = dense_to_band(sing, kl, ku).astype(mats[0].dtype)
        configs = [(n, kl, ku)] * 4
        (m_ref, p_ref, i_ref), (m_vec, p_vec, i_vec) = _run_both(
            gbtrf_vbatch, configs, mats)
        assert i_ref[2] == 6 and i_vec[2] == 6
        assert all(i_vec[k] == 0 for k in (0, 1, 3))
        for k in range(4):
            _bytes_equal((m_vec[k], m_ref[k]), (p_vec[k], p_ref[k]))

    def test_fused_singleton_bucket_runs_scalar_body(self):
        """A bucket of one lane has nothing to interleave; the vectorized
        launch must still produce that lane's exact per-block bits."""
        configs = [(12, 1, 1), (20, 2, 3)]    # two singleton buckets
        rng = np.random.default_rng(11)
        mats = [random_band(n, kl, ku, seed=rng) for n, kl, ku in configs]
        (m_ref, p_ref, i_ref), (m_vec, p_vec, i_vec) = _run_both(
            gbtrf_vbatch_fused, configs, mats)
        for k in range(2):
            _bytes_equal((m_vec[k], m_ref[k]), (p_vec[k], p_ref[k]))
        _bytes_equal((i_vec, i_ref))


class TestGbsvVbatchVectorized:
    @pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
    def test_mixed_shapes_with_singular_lane_bitwise(self, dtype):
        configs = [(24, 2, 3), (24, 2, 3), (16, 1, 1), (24, 2, 3),
                   (16, 1, 1)]
        rng = np.random.default_rng(5)
        mats = [random_band(n, kl, ku, dtype=dtype, seed=rng)
                for n, kl, ku in configs]
        sing = np.eye(configs[1][0])
        sing[8, 8] = 0.0                    # singular inside the big bucket
        mats[1] = dense_to_band(sing, configs[1][1],
                                configs[1][2]).astype(dtype)
        rhs = [random_rhs(n, 1, dtype=dtype, seed=100 + k)
               for k, (n, _, _) in enumerate(configs)]
        outs = []
        for vec in (False, True):
            ms = [a.copy() for a in mats]
            bs = [b.copy() for b in rhs]
            piv, info = gbsv_vbatch(
                [c[0] for c in configs], [c[1] for c in configs],
                [c[2] for c in configs], [1] * len(configs),
                ms, bs, vectorize=vec)
            outs.append((ms, bs, piv, info))
        (m_ref, b_ref, p_ref, i_ref), (m_vec, b_vec, p_vec, i_vec) = outs
        assert i_ref[1] == 9 and i_vec[1] == 9
        # LAPACK: B of the singular problem stays untouched.
        _bytes_equal((b_vec[1], rhs[1]), (b_ref[1], rhs[1]))
        for k in range(len(configs)):
            _bytes_equal((m_vec[k], m_ref[k]), (b_vec[k], b_ref[k]),
                         (p_vec[k], p_ref[k]))
        _bytes_equal((i_vec, i_ref))


class TestPointerArrayDispatch:
    def test_noncontiguous_pointer_array_packs(self):
        """Separate allocations (non-contiguous as a batch) stage through
        the gather/pack path and match the per-block bits."""
        n, kl, ku, batch = 20, 2, 2, 5
        rng = np.random.default_rng(13)
        blocks = [random_band(n, kl, ku, seed=rng) for _ in range(batch)]
        scattered = PointerArray([b.copy() for b in blocks])
        stream = Stream(H100_PCIE)
        piv, info = gbtrf_batch(n, n, kl, ku, scattered, method="window",
                                stream=stream, vectorize=True)
        rec = stream.records[-1]
        assert rec.vectorized and rec.packed
        assert rec.display_name == "gbtrf_window[vec+pack]"
        assert rec.pack_bytes == 2 * sum(b.nbytes for b in blocks)
        ref = [b.copy() for b in blocks]
        piv2, info2 = gbtrf_batch(n, n, kl, ku, ref, batch=batch,
                                  method="window", vectorize=False)
        for k in range(batch):
            _bytes_equal((np.asarray(scattered[k]), ref[k]),
                         (piv[k], piv2[k]))
        _bytes_equal((info, info2))

    def test_interleaved_views_take_soa_route(self):
        """Lane-interleaved views of one buffer are unpackable (their byte
        spans interleave) but disjoint: since the SoA layout became
        first-class (docs/LAYOUTS.md) auto dispatch runs them natively as
        ``[vec+soa]``, bit-identical to per-block execution."""
        n, kl, ku = 16, 1, 2
        ldab = 2 * kl + ku + 1
        rng = np.random.default_rng(17)
        buf = np.asfortranarray(rng.standard_normal((2 * ldab, n)))
        views = [buf[0::2, :], buf[1::2, :]]   # interleaved rows, one buffer
        ref = [v.copy() for v in views]
        piv_ref, i_ref = gbtrf_batch(n, n, kl, ku, ref, batch=2,
                                     method="window", vectorize=False)
        stream = Stream(H100_PCIE)
        piv, info = gbtrf_batch(n, n, kl, ku, views, batch=2,
                                method="window", stream=stream,
                                vectorize=True)
        rec = stream.records[-1]
        assert rec.vectorized and rec.soa and not rec.packed
        assert rec.display_name == "gbtrf_window[vec+soa]"
        for k in range(2):
            _bytes_equal((views[k], ref[k]), (piv[k], piv_ref[k]))
        _bytes_equal((info, i_ref))


class TestVectorizeErrorPaths:
    def test_vbatch_aliased_lane_raises_on_true(self):
        n, kl, ku = 14, 1, 1
        a = random_band(n, kl, ku, seed=19)
        mats = [a, a]                        # same storage in one bucket
        with pytest.raises(DeviceError, match="batch-vectorize"):
            gbtrf_vbatch([n, n], [n, n], [kl, kl], [ku, ku], mats,
                         vectorize=True)

    def test_vbatch_fused_aliased_lane_raises_on_true(self):
        n, kl, ku = 14, 1, 1
        a = random_band(n, kl, ku, seed=23)
        with pytest.raises(DeviceError, match="batch-vectorize"):
            gbtrf_vbatch_fused([n, n], [n, n], [kl, kl], [ku, ku], [a, a],
                               vectorize=True)

    def test_vbatch_aliased_auto_falls_back_bitwise(self):
        """Auto dispatch on an aliased bucket silently runs per-block —
        same bits as vectorize=False (both factor the shared storage
        twice, in lane order)."""
        n, kl, ku = 14, 1, 1
        a0 = random_band(n, kl, ku, seed=29)
        ref = a0.copy()
        pv_ref, i_ref = gbtrf_vbatch([n, n], [n, n], [kl, kl], [ku, ku],
                                     [ref, ref], vectorize=False)
        got = a0.copy()
        pv, i = gbtrf_vbatch([n, n], [n, n], [kl, kl], [ku, ku],
                             [got, got])
        _bytes_equal((got, ref), (pv[0], pv_ref[0]), (pv[1], pv_ref[1]),
                     (i, i_ref))

    def test_reference_method_rejects_vectorize_true(self):
        n, kl, ku = 12, 1, 1
        mats = [random_band(n, kl, ku, seed=31) for _ in range(2)]
        with pytest.raises(ArgumentError):
            gbtrf_batch(n, n, kl, ku, mats, batch=2, method="reference",
                        vectorize=True)

    def test_mixed_shape_uniform_batch_rejected_on_true(self):
        """Same configuration, different ldab padding: the uniform driver
        cannot stack them, so vectorize=True raises."""
        n, kl, ku = 12, 1, 1
        a = random_band(n, kl, ku, seed=37)
        b = random_band(n, kl, ku, seed=38, ldab=2 * kl + ku + 3)
        with pytest.raises(DeviceError, match="batch-vectorize"):
            gbtrf_batch(n, n, kl, ku, [a, b], batch=2, method="window",
                        vectorize=True)

    def test_mixed_ldab_vbatch_buckets_separately(self):
        """The vbatch group key includes the storage shape, so mixed-ldab
        lanes of one configuration land in different buckets and still
        vectorize bit-identically."""
        n, kl, ku = 12, 1, 1
        rng = np.random.default_rng(41)
        mats = [random_band(n, kl, ku, seed=rng),
                random_band(n, kl, ku, seed=rng, ldab=2 * kl + ku + 3),
                random_band(n, kl, ku, seed=rng),
                random_band(n, kl, ku, seed=rng, ldab=2 * kl + ku + 3)]
        configs = [(n, kl, ku)] * 4
        (m_ref, p_ref, i_ref), (m_vec, p_vec, i_vec) = _run_both(
            gbtrf_vbatch, configs, mats)
        for k in range(4):
            _bytes_equal((m_vec[k], m_ref[k]), (p_vec[k], p_ref[k]))
        _bytes_equal((i_vec, i_ref))


class TestTraceAttribution:
    def test_vbatch_fused_vectorized_record(self):
        configs, mats = _ragged_problems(seed=43)
        stream = Stream(H100_PCIE)
        ms = [a.copy() for a in mats]
        gbtrf_vbatch_fused([c[0] for c in configs],
                           [c[0] for c in configs],
                           [c[1] for c in configs],
                           [c[2] for c in configs], ms,
                           stream=stream, vectorize=True)
        rec = stream.records[-1]
        assert rec.vectorized and rec.packed
        assert rec.display_name == "gbtrf_vbatch[vec+pack]"
        assert rec.pack_bytes == 2 * sum(a.nbytes for a in ms)

    def test_grouped_vbatch_vectorized_records(self):
        configs, mats = _ragged_problems(seed=47)
        stream = Stream(H100_PCIE)
        ms = [a.copy() for a in mats]
        gbtrf_vbatch([c[0] for c in configs], [c[0] for c in configs],
                     [c[1] for c in configs], [c[2] for c in configs],
                     ms, stream=stream, vectorize=True)
        # One launch per distinct configuration, each vectorized (the
        # scattered per-group matrix lists stage through the pack path).
        assert len(stream.records) == 3
        assert all(r.vectorized and r.packed for r in stream.records)
