"""Self-healing dispatch: retry, ladder fallback, quarantine, BatchReport."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense
from repro.band.generate import random_band_batch, random_rhs
from repro.core.batched import gbsv_vbatch, gbtrf_vbatch
from repro.core.gbsv import gbsv_batch
from repro.core.gbtrf import gbtrf_batch
from repro.core.gbtrs import gbtrs_batch
from repro.core.resilience import (
    BatchReport,
    ResiliencePolicy,
    merge_reports,
)
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, FaultPlan, disarm_faults, fault_injection
from repro.gpusim.faults import LANE_CORRUPTION, LAUNCH_FAILURE, SMEM_REJECTION


@pytest.fixture(autouse=True)
def _clean_injectors():
    yield
    disarm_faults()


def _system(batch=16, n=48, kl=2, ku=3, nrhs=1, seed=0):
    a = random_band_batch(batch, n, kl, ku, seed=seed)
    b = random_rhs(n, nrhs, batch=batch, seed=seed + 1)
    return a, b


class TestFaultFree:
    """With no faults the resilient path is a bit-identical pass-through."""

    def test_gbtrf_bit_identical(self):
        a, _ = _system()
        base = a.copy()
        piv0, info0 = gbtrf_batch(48, 48, 2, 3, base)
        piv1, info1, report = gbtrf_batch(48, 48, 2, 3, a, resilient=True)
        assert np.array_equal(a, base)
        assert all(np.array_equal(p, q) for p, q in zip(piv0, piv1))
        assert np.array_equal(info0, info1)
        assert report.retries == 0 and report.launch_failures == 0
        assert report.smem_rejections == 0 and not report.fallbacks
        assert not report.quarantined and report.ok

    def test_gbtrs_bit_identical(self):
        a, b = _system(nrhs=3)
        piv, _ = gbtrf_batch(48, 48, 2, 3, a)
        base = b.copy()
        gbtrs_batch("N", 48, 2, 3, 3, a, piv, base)
        info, report = gbtrs_batch("N", 48, 2, 3, 3, a, piv, b,
                                   resilient=True)
        assert np.array_equal(b, base)
        assert (info == 0).all() and report.ok

    @pytest.mark.parametrize("n", [24, 96])   # fused and standard gbsv
    def test_gbsv_bit_identical(self, n):
        a, b = _system(n=n)
        base_a, base_b = a.copy(), b.copy()
        gbsv_batch(n, 2, 3, 1, base_a, None, base_b)
        piv, info, report = gbsv_batch(n, 2, 3, 1, a, None, b,
                                       resilient=True)
        assert np.array_equal(a, base_a) and np.array_equal(b, base_b)
        assert (info == 0).all()
        assert report.faults_tolerated == 0 and report.ok

    def test_report_summary_readable(self):
        a, _ = _system()
        _, _, report = gbtrf_batch(48, 48, 2, 3, a, resilient=True)
        text = report.summary()
        assert "gbtrf" in text and "retries=0" in text


class TestRetry:
    def test_transient_launch_failures_absorbed(self):
        a, _ = _system()
        base = a.copy()
        gbtrf_batch(48, 48, 2, 3, base)
        plan = FaultPlan(seed=8, launch_failure_rate=1.0,
                         max_launch_failures=3)
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, report = gbtrf_batch(48, 48, 2, 3, a,
                                            resilient=True)
        assert np.array_equal(a, base)    # retries restored, then succeeded
        assert report.launch_failures == 3 == len(inj.events(LAUNCH_FAILURE))
        assert report.retries == 3
        assert report.methods["gbtrf"] == "fused"   # n=48 <= FUSED_CUTOFF

    def test_retry_budget_then_ladder_then_host(self):
        """An unending failure storm walks the whole ladder to the host."""
        a, _ = _system()
        base = a.copy()
        piv0, info0 = gbtrf_batch(48, 48, 2, 3, base)
        plan = FaultPlan(seed=8, launch_failure_rate=1.0)
        policy = ResiliencePolicy(max_retries=2)
        with fault_injection(H100_PCIE, plan):
            piv, info, report = gbtrf_batch(48, 48, 2, 3, a,
                                            resilient=True, policy=policy)
        # each rung burns 1 + max_retries launches, then the host net.
        assert report.methods["gbtrf"] == "host"
        assert report.fallbacks == [
            ("gbtrf", "fused", "window"),
            ("gbtrf", "window", "reference"),
            ("gbtrf", "reference", "host")]
        # The host net is bit-identical to the kernels.
        assert np.array_equal(a, base)
        assert np.array_equal(info, info0)
        assert all(np.array_equal(p, q) for p, q in zip(piv, piv0))

    def test_backoff_accounting(self):
        plan = FaultPlan(seed=8, launch_failure_rate=1.0,
                         max_launch_failures=2)
        policy = ResiliencePolicy(backoff_base=1e-4, backoff_cap=2e-4)
        a, _ = _system()
        with fault_injection(H100_PCIE, plan):
            _, _, report = gbtrf_batch(48, 48, 2, 3, a, resilient=True,
                                       policy=policy)
        # two retries: 1e-4 then min(2e-4, cap) = 2e-4
        assert report.backoff_total == pytest.approx(3e-4)


class TestLadderFallback:
    def test_smem_rejection_degrades_immediately(self):
        a, _ = _system()
        base = a.copy()
        gbtrf_batch(48, 48, 2, 3, base)
        plan = FaultPlan(seed=0, smem_rejections=1,
                         smem_kernels="gbtrf_fused")
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, report = gbtrf_batch(48, 48, 2, 3, a,
                                            resilient=True)
        assert len(inj.events(SMEM_REJECTION)) == 1
        assert report.smem_rejections == 1
        assert report.retries == 0            # no retry for smem
        assert ("gbtrf", "fused", "window") in report.fallbacks
        assert report.methods["gbtrf"] == "window"
        assert np.array_equal(a, base)        # designs are bit-identical

    def test_fused_gbsv_falls_back_to_standard(self):
        n = 24                                 # fused-eligible
        a, b = _system(n=n)
        plan = FaultPlan(seed=0, smem_rejections=1,
                         smem_kernels="gbsv_fused")
        with fault_injection(H100_PCIE, plan):
            piv, info, report = gbsv_batch(n, 2, 3, 1, a, None, b,
                                           resilient=True)
        assert ("gbsv", "fused", "standard") in report.fallbacks
        assert (info == 0).all()
        # standard-path result is correct (fused and standard agree to
        # rounding, not bitwise)
        a2, b2 = _system(n=n)
        gbsv_batch(n, 2, 3, 1, a2, None, b2, method="standard")
        assert np.allclose(b, b2, atol=1e-12)

    def test_vectorize_true_downgraded_on_reference_rung(self):
        """A forced-vectorized call must not crash when the ladder lands
        on the reference design (which has no vectorized path)."""
        a, _ = _system()
        plan = FaultPlan(seed=0, smem_rejections=2, smem_kernels="gbtrf")
        with fault_injection(H100_PCIE, plan):
            piv, info, report = gbtrf_batch(48, 48, 2, 3, a,
                                            resilient=True, vectorize=True)
        assert (info == 0).all()
        assert report.methods["gbtrf"] == "reference"


class TestQuarantine:
    def test_singular_lane_quarantined_and_reported(self):
        a, b = _system()
        a[5, :, :] = 0.0
        piv, info, report = gbsv_batch(48, 2, 3, 1, a, None, b,
                                       resilient=True)
        assert info[5] > 0
        assert report.singular == (5,)
        assert report.quarantined == (5,)
        assert np.array_equal(b[5], random_rhs(48, 1, batch=16, seed=1)[5])

    def test_corrupted_lane_recovered(self):
        a, b = _system(n=96)
        base_a, base_b = a.copy(), b.copy()
        gbsv_batch(96, 2, 3, 1, base_a, None, base_b)
        plan = FaultPlan(seed=0, corrupt_lanes=(3,),
                         corrupt_after="gbtrf_window")
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, report = gbsv_batch(96, 2, 3, 1, a, None, b,
                                           resilient=True)
        assert {ev.lane for ev in inj.events(LANE_CORRUPTION)} == {3}
        assert report.corrupted == (3,) and report.refined == (3,)
        assert (info == 0).all()
        assert np.isfinite(b[3]).all()
        assert np.allclose(b[3], base_b[3], atol=1e-9)
        # every other lane is untouched by the recovery
        for k in range(16):
            if k != 3:
                assert np.array_equal(b[k], base_b[k])
                assert np.array_equal(a[k], base_a[k])

    def test_nan_input_lane_is_unrecoverable(self):
        a, b = _system()
        a[2, 2, 10] = np.nan
        piv, info, report = gbsv_batch(48, 2, 3, 1, a, None, b,
                                       resilient=True)
        assert report.unrecovered == (2,)
        assert not report.ok
        # the other lanes still solved
        assert all(np.isfinite(b[k]).all() for k in range(16) if k != 2)

    def test_gbtrs_nonfinite_solution_quarantined(self):
        a, b = _system(nrhs=2)
        piv, _ = gbtrf_batch(48, 48, 2, 3, a)
        plan = FaultPlan(seed=0, corrupt_lanes=(4,), corrupt_after="gbtrs",
                         corrupt_value=float("inf"))
        base = b.copy()
        gbtrs_batch("N", 48, 2, 3, 2, a.copy(), piv, base)
        with fault_injection(H100_PCIE, plan):
            info, report = gbtrs_batch("N", 48, 2, 3, 2, a, piv, b,
                                       resilient=True)
        assert 4 in report.quarantined
        assert report.ok

    def test_pivot_growth_triggers_refinement(self):
        a, b = _system()
        policy = ResiliencePolicy(growth_threshold=0.0)   # always refine
        piv, info, report = gbsv_batch(48, 2, 3, 1, a, None, b,
                                       resilient=True, policy=policy)
        # growth > 0 everywhere, but only quarantined lanes are eligible;
        # with no faults there is nothing to refine
        assert report.refined == ()
        a2, b2 = _system()
        a2[7, :, :] = 0.0
        piv2, info2, rep2 = gbsv_batch(48, 2, 3, 1, a2, None, b2,
                                       resilient=True, policy=policy)
        assert rep2.singular == (7,)    # singular lanes skip refinement

    def test_refinement_can_be_disabled(self):
        a, b = _system(n=96)
        plan = FaultPlan(seed=0, corrupt_lanes=(3,),
                         corrupt_after="gbtrf_window")
        policy = ResiliencePolicy(refine=False)
        with fault_injection(H100_PCIE, plan):
            piv, info, report = gbsv_batch(96, 2, 3, 1, a, None, b,
                                           resilient=True, policy=policy)
        assert report.corrupted == (3,) and report.refined == ()
        assert np.isfinite(b[3]).all()


class TestArgumentErrors:
    """Resilience never retries malformed calls."""

    def test_bad_method_raises_eagerly(self):
        a, _ = _system()
        with pytest.raises(ArgumentError):
            gbtrf_batch(48, 48, 2, 3, a, resilient=True, method="bogus")

    def test_execute_false_rejected(self):
        a, _ = _system()
        with pytest.raises(ArgumentError):
            gbtrf_batch(48, 48, 2, 3, a, resilient=True, execute=False)
        with pytest.raises(ArgumentError):
            gbsv_batch(48, 2, 3, 1, a, None,
                       random_rhs(48, 1, batch=16, seed=1),
                       resilient=True, max_blocks=2)

    def test_empty_batch(self):
        piv, info, report = gbtrf_batch(8, 8, 1, 1, np.empty((0, 4, 8)),
                                        resilient=True)
        assert report.batch == 0 and report.ok


class TestVbatch:
    def test_gbtrf_vbatch_resilient_merges_reports(self):
        ns = [40, 40, 24, 24, 24]
        mats = [random_band_batch(1, n, 2, 2, seed=k)[0]
                for k, n in enumerate(ns)]
        base = [m.copy() for m in mats]
        for k, n in enumerate(ns):
            gbtrf_batch(n, n, 2, 2, [base[k]], batch=1)
        piv, info, report = gbtrf_vbatch(ns, ns, [2] * 5, [2] * 5, mats,
                                         resilient=True)
        assert isinstance(report, BatchReport)
        assert report.batch == 5 and (info == 0).all()
        assert all(np.array_equal(m, b) for m, b in zip(mats, base))

    def test_gbsv_vbatch_resilient_quarantine_lanes_are_global(self):
        ns = [40, 40, 24, 24]
        mats = [random_band_batch(1, n, 2, 2, seed=k)[0]
                for k, n in enumerate(ns)]
        rhs = [random_rhs(n, 1, seed=10 + k) for k, n in enumerate(ns)]
        mats[3][:, :] = 0.0                       # global lane 3 singular
        piv, info, report = gbsv_vbatch(ns, [2] * 4, [2] * 4, [1] * 4,
                                        mats, rhs, resilient=True)
        assert info[3] > 0
        assert report.singular == (3,)
        assert report.quarantined == (3,)

    def test_merge_reports_remaps_and_sums(self):
        r1 = BatchReport("gbsv", 2, retries=1, launch_failures=2,
                         quarantined=(0,), singular=(0,),
                         info=np.array([3, 0]))
        r2 = BatchReport("gbsv", 3, smem_rejections=1, corrupted=(2,),
                         quarantined=(2,), refined=(2,),
                         info=np.array([0, 0, 0]))
        merged = merge_reports("gbsv", 5, [((1, 3), r1), ((0, 2, 4), r2)])
        assert merged.retries == 1 and merged.launch_failures == 2
        assert merged.smem_rejections == 1
        assert merged.quarantined == (1, 4)
        assert merged.singular == (1,) and merged.corrupted == (4,)
        assert merged.refined == (4,)
        assert merged.info.tolist() == [0, 3, 0, 0, 0]


class TestAcceptanceStorm:
    """The ISSUE's acceptance scenario: a 64-lane gbsv batch survives a
    seeded storm (10% launch-failure rate, 2 smem rejections, 3 corrupted
    lanes) with healthy lanes bit-identical to a fault-free run and the
    report matching the injected faults exactly."""

    BATCH, N, KL, KU = 64, 96, 3, 2
    PLAN = FaultPlan(seed=2024, launch_failure_rate=0.10,
                     max_launch_failures=6, smem_rejections=2,
                     smem_kernels="gbtrs", corrupt_lanes=(5, 23, 41),
                     corrupt_after="gbtrf_window")

    def _run(self):
        a = random_band_batch(self.BATCH, self.N, self.KL, self.KU, seed=0)
        b = random_rhs(self.N, 1, batch=self.BATCH, seed=1)
        base_a, base_b = a.copy(), b.copy()
        piv0, info0 = gbsv_batch(self.N, self.KL, self.KU, 1, base_a, None,
                                 base_b)
        assert (info0 == 0).all()
        with fault_injection(H100_PCIE, self.PLAN) as inj:
            piv, info, report = gbsv_batch(self.N, self.KL, self.KU, 1, a,
                                           None, b, resilient=True)
        return a, b, base_a, base_b, piv, piv0, info, report, inj

    def test_survives_and_accounts_exactly(self):
        a, b, base_a, base_b, piv, piv0, info, report, inj = self._run()
        counts = inj.counts()
        # every kind of fault actually fired...
        assert counts[LAUNCH_FAILURE] > 0
        assert counts[SMEM_REJECTION] == 2
        assert counts[LANE_CORRUPTION] == 3
        # ...and the report accounts for each injected fault exactly
        assert report.launch_failures == counts[LAUNCH_FAILURE]
        assert report.smem_rejections == counts[SMEM_REJECTION]
        assert set(report.corrupted) == {
            ev.lane for ev in inj.events(LANE_CORRUPTION)} == {5, 23, 41}
        assert report.quarantined == (5, 23, 41)
        assert report.faults_tolerated == (counts[LAUNCH_FAILURE]
                                           + counts[SMEM_REJECTION] + 3)
        assert report.ok

    def test_healthy_lanes_bit_identical(self):
        a, b, base_a, base_b, piv, piv0, info, report, inj = self._run()
        for k in range(self.BATCH):
            if k in report.quarantined:
                continue
            assert np.array_equal(a[k], base_a[k]), f"factors lane {k}"
            assert np.array_equal(b[k], base_b[k]), f"solution lane {k}"
            assert np.array_equal(piv[k], piv0[k]), f"pivots lane {k}"

    def test_quarantined_lanes_recovered_correctly(self):
        a, b, base_a, base_b, piv, piv0, info, report, inj = self._run()
        assert (info == 0).all()        # corruption is not singularity
        for k in report.quarantined:
            assert np.isfinite(b[k]).all()
            assert np.allclose(b[k], base_b[k], atol=1e-8)
        assert report.refined == (5, 23, 41)

    def test_storm_is_reproducible(self):
        first = self._run()
        second = self._run()
        assert first[7].summary() == second[7].summary()
        assert np.array_equal(first[6], second[6])
        assert np.array_equal(first[1], second[1])


class TestBatchReportFaultDomainRoundTrip:
    """device_events / failovers / hedges survive the wire format."""

    def _report(self):
        rep = BatchReport("gbtrf", 16)
        rep.device_events = [
            {"event": "failover", "kind": "device-lost",
             "device": "h100-pcie:0", "start": 0, "stop": 4,
             "injected": True, "orphan_lanes": 12},
            {"event": "trip", "device": "h100-pcie:0",
             "kind": "device-lost", "fatal": True, "failures": 1},
            {"event": "probe", "device": "h100-pcie:0"},
            {"event": "recover", "device": "h100-pcie:0"},
            {"event": "hedge", "device": "h100-pcie:1",
             "source": "h100-pcie:0", "start": 4, "stop": 8, "won": True},
        ]
        rep.failovers = 1
        rep.hedges = 1
        return rep

    def test_round_trip_is_lossless(self):
        rep = self._report()
        back = BatchReport.from_dict(rep.to_dict())
        assert back.device_events == rep.device_events
        assert back.failovers == 1 and back.hedges == 1
        assert back.to_dict() == rep.to_dict()

    def test_json_safe(self):
        import json
        d = self._report().to_dict()
        assert json.loads(json.dumps(d)) == d

    def test_failovers_count_as_faults_tolerated(self):
        rep = self._report()
        assert rep.faults_tolerated >= rep.failovers

    def test_summary_mentions_fault_domain(self):
        s = self._report().summary()
        assert "failovers=1" in s
        assert "hedges=1" in s

    def test_unknown_keys_ignored(self):
        d = self._report().to_dict()
        d["brand_new_counter"] = 7
        d["another_future_list"] = [1, 2, 3]
        back = BatchReport.from_dict(d)
        assert back.to_dict() == self._report().to_dict()

    def test_defaults_absent_keys(self):
        """A report serialized before PR 8 (no fault-domain keys) loads."""
        d = BatchReport("gbsv", 4).to_dict()
        for key in ("device_events", "failovers", "hedges"):
            d.pop(key)
        back = BatchReport.from_dict(d)
        assert back.device_events == []
        assert back.failovers == 0 and back.hedges == 0
