"""Exceptions, info-code semantics, and type helpers."""

import numpy as np
import pytest

from repro.errors import (
    ArgumentError,
    DeviceError,
    ReproError,
    SharedMemoryError,
    SingularMatrixError,
    check_arg,
)
from repro.types import Precision, Trans, is_complex, np_dtype, real_dtype_of


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ArgumentError, ReproError)
        assert issubclass(ArgumentError, ValueError)
        assert issubclass(SingularMatrixError, ArithmeticError)
        assert issubclass(SharedMemoryError, MemoryError)
        assert issubclass(DeviceError, RuntimeError)

    def test_argument_error_info_code(self):
        e = ArgumentError(3, "bad kl")
        assert e.position == 3
        assert e.info == -3          # LAPACK info = -i convention
        assert "argument 3" in str(e)

    def test_singular_matrix_error(self):
        e = SingularMatrixError(7, 12)
        assert e.index == 7
        assert e.info == 12
        assert "U(12,12)" in str(e)

    def test_shared_memory_error_fields(self):
        e = SharedMemoryError(100_000, 65_536, "gbtrf_fused")
        assert e.requested == 100_000
        assert e.limit == 65_536
        assert "gbtrf_fused" in str(e)

    def test_check_arg(self):
        check_arg(True, 1, "fine")
        with pytest.raises(ArgumentError) as exc:
            check_arg(False, 4, "broken")
        assert exc.value.position == 4


class TestTrans:
    def test_from_characters(self):
        assert Trans.from_any("n") is Trans.NO_TRANS
        assert Trans.from_any("T") is Trans.TRANS
        assert Trans.from_any("c") is Trans.CONJ_TRANS

    def test_identity_passthrough(self):
        assert Trans.from_any(Trans.TRANS) is Trans.TRANS

    def test_invalid(self):
        with pytest.raises(ValueError, match="transpose"):
            Trans.from_any("Q")


class TestPrecision:
    @pytest.mark.parametrize("prefix,dtype", [
        (Precision.S, np.float32), (Precision.D, np.float64),
        (Precision.C, np.complex64), (Precision.Z, np.complex128)])
    def test_mapping(self, prefix, dtype):
        assert prefix.dtype == np.dtype(dtype)
        assert Precision.from_dtype(dtype) is prefix

    def test_unsupported_dtype(self):
        with pytest.raises(ValueError):
            Precision.from_dtype(np.int32)

    def test_np_dtype_normalises(self):
        assert np_dtype("float64") == np.float64
        with pytest.raises(ValueError):
            np_dtype(np.float16)

    def test_is_complex(self):
        assert is_complex(np.complex64)
        assert not is_complex(np.float32)

    def test_real_dtype_of(self):
        assert real_dtype_of(np.complex128) == np.float64
        assert real_dtype_of(np.complex64) == np.float32
        assert real_dtype_of(np.float64) == np.float64
