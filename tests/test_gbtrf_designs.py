"""The three GBTRF kernel designs must agree bit-for-bit with GBTF2.

Covers the fused (Section 5.2), sliding-window (Section 5.3), and reference
fork-join (Section 5.1) designs, across band shapes, window blockings,
thread counts, devices, and rectangular matrices.
"""

import numpy as np
import pytest

from repro.band.generate import random_band, random_band_batch
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch, select_gbtrf_method
from repro.core.gbtrf_fused import FusedGbtrfKernel, default_fused_threads
from repro.core.gbtrf_window import SlidingWindowGbtrfKernel, window_factor_steps
from repro.errors import SharedMemoryError
from repro.gpusim import H100_PCIE, MI250X_GCD, Stream, launch

from conftest import BAND_CONFIGS


def _truth(m, n, kl, ku, mats):
    outs, pivs, infos = [], [], []
    for a in mats:
        ab = a.copy()
        piv, info = gbtf2(m, n, kl, ku, ab)
        outs.append(ab)
        pivs.append(piv)
        infos.append(info)
    return outs, pivs, infos


@pytest.mark.parametrize("method", ["fused", "window", "reference"])
@pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
def test_design_matches_gbtf2(method, n, kl, ku):
    batch = 3
    a = random_band_batch(batch, n, kl, ku, seed=n + kl * 100)
    refs, pivs, infos = _truth(n, n, kl, ku, a)
    piv, info = gbtrf_batch(n, n, kl, ku, a, method=method)
    for k in range(batch):
        np.testing.assert_allclose(a[k], refs[k], atol=0, rtol=0)
        np.testing.assert_array_equal(piv[k], pivs[k])
        assert info[k] == infos[k]


@pytest.mark.parametrize("device", [H100_PCIE, MI250X_GCD])
@pytest.mark.parametrize("method", ["fused", "window"])
def test_designs_device_independent(device, method):
    n, kl, ku = 40, 2, 3
    a = random_band_batch(2, n, kl, ku, seed=11)
    refs, pivs, infos = _truth(n, n, kl, ku, a)
    piv, info = gbtrf_batch(n, n, kl, ku, a, device=device, method=method)
    for k in range(2):
        np.testing.assert_allclose(a[k], refs[k], atol=0)
        np.testing.assert_array_equal(piv[k], pivs[k])


class TestSlidingWindow:
    @pytest.mark.parametrize("nb", [1, 2, 3, 5, 8, 16, 64])
    def test_any_blocking_size(self, nb):
        n, kl, ku = 37, 2, 3
        a = random_band_batch(2, n, kl, ku, seed=nb)
        refs, pivs, _ = _truth(n, n, kl, ku, a)
        piv, info = gbtrf_batch(n, n, kl, ku, a, method="window", nb=nb)
        for k in range(2):
            np.testing.assert_allclose(a[k], refs[k], atol=0)
            np.testing.assert_array_equal(piv[k], pivs[k])

    @pytest.mark.parametrize("threads", [3, 7, 32, 128])
    def test_any_thread_count(self, threads):
        n, kl, ku = 24, 2, 3
        a = random_band_batch(2, n, kl, ku, seed=threads)
        refs, _, _ = _truth(n, n, kl, ku, a)
        gbtrf_batch(n, n, kl, ku, a, method="window", threads=threads)
        np.testing.assert_allclose(a[0], refs[0], atol=0)

    def test_threads_below_minimum_rejected(self):
        a = random_band_batch(1, 16, 4, 2, seed=0)
        with pytest.raises(ValueError, match="kl\\+1"):
            gbtrf_batch(16, 16, 4, 2, a, method="window", threads=3)

    def test_bad_nb_rejected(self):
        a = random_band_batch(1, 16, 2, 2, seed=0)
        with pytest.raises(ValueError, match="nb"):
            gbtrf_batch(16, 16, 2, 2, a, method="window", nb=0)

    @pytest.mark.parametrize("m,n", [(20, 30), (30, 20), (5, 40)])
    def test_rectangular(self, m, n):
        kl, ku = 3, 2
        a = [random_band(n, kl, ku, m=m, seed=m * n)]
        refs, pivs, _ = _truth(m, n, kl, ku, a)
        gbtrf_batch(m, n, kl, ku, a, method="window", batch=1, nb=4)
        np.testing.assert_allclose(a[0], refs[0], atol=0)

    def test_window_smem_constant_in_n(self):
        mk = lambda n: SlidingWindowGbtrfKernel(
            n, n, 2, 3, [random_band(n, 2, 3, seed=0)],
            [np.zeros(n, dtype=np.int64)], np.zeros(1, dtype=np.int64),
            nb=16, threads=8)
        assert mk(64).smem_bytes() == mk(2048).smem_bytes()

    def test_step_count(self):
        assert window_factor_steps(100, 16) == 7
        assert window_factor_steps(96, 16) == 6
        assert window_factor_steps(0, 16) == 0

    def test_garbage_beyond_band_untouched(self):
        """Extra ldab rows below the factor layout are never referenced."""
        n, kl, ku = 20, 2, 3
        a = random_band(n, kl, ku, ldab=12, seed=3)
        a[8:, :] = 123.0                   # padding rows
        ref = a.copy()
        gbtf2(n, n, kl, ku, ref)
        got = [a.copy()]
        gbtrf_batch(n, n, kl, ku, got, method="window", batch=1)
        np.testing.assert_allclose(got[0][:8], ref[:8], atol=0)
        assert (got[0][8:] == 123.0).all()


class TestFused:
    def test_smem_grows_with_n(self):
        mk = lambda n: FusedGbtrfKernel(
            n, n, 2, 3, [random_band(n, 2, 3, seed=0)],
            [np.zeros(n, dtype=np.int64)], np.zeros(1, dtype=np.int64))
        assert mk(128).smem_bytes() == 2 * mk(64).smem_bytes()

    def test_fails_to_launch_beyond_lds(self):
        """Paper Fig. 3: the fused kernel fails for large matrices on AMD."""
        n, kl, ku = 1024, 2, 3
        a = random_band_batch(1, n, kl, ku, seed=0)
        with pytest.raises(SharedMemoryError):
            gbtrf_batch(n, n, kl, ku, a, device=MI250X_GCD, method="fused")

    def test_default_threads_respects_minimum(self):
        for kl, ku in [(0, 0), (2, 3), (10, 7), (32, 32)]:
            assert default_fused_threads(kl, ku) >= kl + 1


class TestDispatcher:
    def test_small_sizes_use_fused(self):
        assert select_gbtrf_method(H100_PCIE, 32, 32, 2, 3) == "fused"
        assert select_gbtrf_method(H100_PCIE, 64, 64, 2, 3) == "fused"

    def test_large_sizes_use_window(self):
        assert select_gbtrf_method(H100_PCIE, 65, 65, 2, 3) == "window"
        assert select_gbtrf_method(MI250X_GCD, 1024, 1024, 10, 7) == "window"

    def test_reference_as_safeguard(self):
        """A window too wide for LDS falls back to the reference path."""
        # kl = ku = 60: window rows = 181, cols >= 122 -> ~176 KB > 64 KB.
        assert select_gbtrf_method(MI250X_GCD, 256, 256, 60, 60) == \
            "reference"

    def test_auto_runs_and_matches(self):
        n, kl, ku = 64, 2, 3          # right at the fused cutoff
        a = random_band_batch(2, n, kl, ku, seed=13)
        refs, pivs, _ = _truth(n, n, kl, ku, a)
        piv, info = gbtrf_batch(n, n, kl, ku, a, method="auto")
        np.testing.assert_allclose(a[0], refs[0], atol=0)

    def test_stream_records_the_launch(self):
        stream = Stream(H100_PCIE)
        a = random_band_batch(2, 32, 2, 3, seed=14)
        gbtrf_batch(32, 32, 2, 3, a, stream=stream)
        assert stream.launch_count() == 1
        assert stream.elapsed > 0

    def test_reference_launch_count(self):
        """Two kernel launches per column (Section 5.1's fork-join cost)."""
        stream = Stream(H100_PCIE)
        n = 16
        a = random_band_batch(2, n, 2, 3, seed=15)
        gbtrf_batch(n, n, 2, 3, a, stream=stream, method="reference")
        # One init kernel + a (pivot, update) pair per column.
        assert stream.launch_count() == 1 + 2 * n
