"""GBTF2 building blocks and factorization vs LAPACK ground truth."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense, dense_to_band
from repro.band.generate import random_band, random_band_dense
from repro.core.gbtf2 import (
    gbtf2,
    init_fillin,
    pivot_search,
    rank_one_update,
    scale_column,
    set_fillin,
    swap_right,
    update_bound,
)

from conftest import BAND_CONFIGS, scipy_gbtrf


class TestBuildingBlocks:
    def test_pivot_search_picks_largest(self):
        n, kl, ku = 6, 2, 1
        a = np.zeros((6, 6))
        a[0, 0], a[1, 0], a[2, 0] = 1.0, -5.0, 3.0
        a += np.eye(6)
        ab = dense_to_band(a, kl, ku)
        assert pivot_search(ab, n, kl, ku, 0) == 1

    def test_pivot_search_respects_matrix_edge(self):
        n, kl, ku = 4, 3, 0
        ab = random_band(n, kl, ku, seed=0)
        # At column n-1 only the diagonal remains.
        assert pivot_search(ab, n, kl, ku, n - 1) == 0

    def test_update_bound_monotone(self):
        ju = -1
        for j in range(10):
            new = update_bound(100, 2, 3, j, 2, ju)
            assert new >= ju
            assert new <= j + 5
            ju = new

    def test_update_bound_worst_case(self):
        # jp = kl gives the widest reach: j + ku + kl.
        assert update_bound(100, 2, 3, 10, 2, -1) == 15

    def test_update_bound_clamps_to_n(self):
        assert update_bound(12, 2, 3, 10, 2, -1) == 11

    def test_set_fillin_zeroes_correct_column(self):
        kl, ku, n = 2, 3, 12
        ab = np.full((8, 12), 7.0)
        set_fillin(ab, n, kl, ku, 0)         # column kv = 5
        assert (ab[0:2, 5] == 0).all()
        assert (ab[2:, 5] == 7.0).all()
        assert (ab[:, 4] == 7.0).all()

    def test_set_fillin_out_of_range_noop(self):
        ab = np.full((8, 12), 7.0)
        set_fillin(ab, 12, 2, 3, 8)          # column 13 doesn't exist
        assert (ab == 7.0).all()

    def test_init_fillin_matches_lapack_preamble(self):
        kl, ku, n = 3, 1, 10
        ab = np.full((2 * kl + ku + 1, n), 7.0)
        init_fillin(ab, n, kl, ku)
        # LAPACK: columns ku+1 .. kv-1 (0-based) get rows kv-j .. kl-1 zeroed.
        kv = kl + ku
        for j in range(n):
            for i in range(kl):
                expect_zero = (ku + 1 <= j < kv) and (kv - j <= i < kl)
                assert (ab[i, j] == 0.0) == expect_zero, (i, j)

    def test_swap_right_only_touches_trailing_columns(self):
        kl, ku, n = 2, 3, 12
        a = random_band_dense(n, n, kl, ku, seed=1)
        ab = dense_to_band(a, kl, ku)
        before = ab.copy()
        j, jp, ju = 3, 2, 8
        swap_right(ab, kl, ku, j, jp, ju)
        # Columns < j unchanged ("swap to the right only").
        np.testing.assert_array_equal(ab[:, :j], before[:, :j])
        # Row j and row j+jp exchanged over [j, ju].
        kv = kl + ku
        for c in range(j, ju + 1):
            assert ab[kv + j - c, c] == before[kv + j + jp - c, c]
            assert ab[kv + j + jp - c, c] == before[kv + j - c, c]

    def test_swap_noop_when_jp_zero(self):
        ab = random_band(10, 2, 3, seed=2)
        before = ab.copy()
        swap_right(ab, 2, 3, 3, 0, 8)
        np.testing.assert_array_equal(ab, before)

    def test_scale_column(self):
        kl, ku, n = 2, 1, 6
        ab = random_band(n, kl, ku, seed=3)
        kv = kl + ku
        pivot = ab[kv, 0]
        below = ab[kv + 1:kv + 3, 0].copy()
        scale_column(ab, n, kl, ku, 0)
        np.testing.assert_allclose(ab[kv + 1:kv + 3, 0], below / pivot)

    def test_rank_one_update_matches_dense(self):
        kl, ku, n = 2, 3, 12
        a = random_band_dense(n, n, kl, ku, seed=4)
        ab = dense_to_band(a, kl, ku)
        j = 2
        scale_column(ab, n, kl, ku, j)
        ju = update_bound(n, kl, ku, j, 0, -1)
        dense = band_to_dense(ab, n, kl, ku, filled=True)
        rank_one_update(ab, n, kl, ku, j, ju)
        expected = dense.copy()
        expected[j + 1:j + 3, j + 1:ju + 1] -= np.outer(
            dense[j + 1:j + 3, j], dense[j, j + 1:ju + 1])
        np.testing.assert_allclose(
            band_to_dense(ab, n, kl, ku, filled=True), expected, atol=1e-14)


class TestGbtf2VsLapack:
    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    def test_square_exact_match(self, n, kl, ku):
        ab = random_band(n, kl, ku, seed=n * 7 + kl)
        lu_ref, piv_ref, info_ref = scipy_gbtrf(ab.copy(), kl, ku, n, n)
        piv, info = gbtf2(n, n, kl, ku, ab)
        # scipy's optimised BLAS may fuse the rank-1 update (FMA), so allow
        # rounding-level differences; pivots and info must match exactly.
        np.testing.assert_allclose(ab, lu_ref, atol=1e-14, rtol=1e-13)
        np.testing.assert_array_equal(piv, piv_ref)
        assert info == info_ref

    @pytest.mark.parametrize("m,n,kl,ku", [
        (7, 9, 2, 3), (9, 7, 3, 2), (1, 9, 0, 3), (9, 1, 3, 0),
        (5, 20, 2, 2), (20, 5, 2, 2),
    ])
    def test_rectangular_exact_match(self, m, n, kl, ku):
        ab = random_band(n, kl, ku, m=m, seed=m * 31 + n)
        lu_ref, piv_ref, info_ref = scipy_gbtrf(ab.copy(), kl, ku, m, n)
        piv, info = gbtf2(m, n, kl, ku, ab)
        np.testing.assert_allclose(ab, lu_ref, atol=1e-14, rtol=1e-13)
        np.testing.assert_array_equal(piv, piv_ref)
        assert info == info_ref

    def test_garbage_fillin_rows_do_not_matter(self):
        """The '+' rows of Figure 2 may hold arbitrary data on input.

        Entries the factorization never references may keep their garbage
        (LAPACK leaves them unspecified), so we compare pivots, info, and
        the *solution* obtained from the factors — which only reads
        referenced entries — rather than raw storage.
        """
        from repro.core.solve_blocks import gbtrs_unblocked
        from repro.band.generate import random_rhs
        n, kl, ku = 16, 2, 3
        ab = random_band(n, kl, ku, seed=5)
        polluted = ab.copy()
        polluted[:kl, :] = 1e30             # fill-in workspace rows
        b = random_rhs(n, 2, seed=6)
        piv_clean, info_clean = gbtf2(n, n, kl, ku, ab)
        piv_dirty, info_dirty = gbtf2(n, n, kl, ku, polluted)
        np.testing.assert_array_equal(piv_clean, piv_dirty)
        assert info_clean == info_dirty
        x_clean = gbtrs_unblocked("N", n, kl, ku, ab, piv_clean, b.copy())
        x_dirty = gbtrs_unblocked("N", n, kl, ku, polluted, piv_dirty,
                                  b.copy())
        np.testing.assert_allclose(x_clean, x_dirty, atol=0)

    def test_reconstructs_pa_equals_lu(self):
        n, kl, ku = 20, 3, 2
        ab0 = random_band(n, kl, ku, seed=6)
        a = band_to_dense(ab0, n, kl, ku)
        ab = ab0.copy()
        piv, info = gbtf2(n, n, kl, ku, ab)
        assert info == 0
        # Build L and U from the band factors.
        u = np.triu(band_to_dense(ab, n, kl, ku, filled=True))
        l = np.eye(n)
        kv = kl + ku
        # Reconstruct L by applying the stored multipliers and swaps in
        # order: A = P0 L0 P1 L1 ... U (standard LAPACK interpretation).
        pa = a.copy()
        for j in range(n):
            p = int(piv[j])
            pa[[j, p], :] = pa[[p, j], :]
            mult = ab[kv + 1:kv + 1 + min(kl, n - j - 1), j]
            pa[j + 1:j + 1 + mult.shape[0], :] -= np.outer(mult, pa[j, :])
        np.testing.assert_allclose(pa, u, atol=1e-12)

    def test_zero_pivot_reports_first_column(self):
        n, kl, ku = 6, 1, 1
        a = np.eye(n)
        a[2, 2] = 0.0
        a[3, 2] = 0.0
        a[2, 3] = 0.0  # make column 2 entirely zero in its active part
        a[1, 2] = 0.0
        ab = dense_to_band(a, kl, ku)
        piv, info = gbtf2(n, n, kl, ku, ab)
        assert info == 3                    # 1-based column index

    def test_zero_matrix_info_is_one(self):
        ab = np.zeros((4, 5))
        piv, info = gbtf2(5, 5, 1, 1, ab)
        assert info == 1

    def test_empty_matrix(self):
        ab = np.zeros((4, 0))
        piv, info = gbtf2(0, 0, 1, 1, ab)
        assert info == 0 and piv.shape == (0,)

    def test_complex_factorization(self):
        n, kl, ku = 12, 2, 3
        ab0 = random_band(n, kl, ku, dtype=np.complex128, seed=8)
        a = band_to_dense(ab0, n, kl, ku)
        ab = ab0.copy()
        piv, info = gbtf2(n, n, kl, ku, ab)
        assert info == 0
        from scipy.linalg import lapack
        lu_ref, piv_ref, _ = lapack.zgbtrf(np.asfortranarray(ab0), kl, ku,
                                           m=n, n=n)
        np.testing.assert_allclose(ab, lu_ref, atol=0)
        np.testing.assert_array_equal(piv, np.asarray(piv_ref))

    def test_pivot_entries_within_band_reach(self):
        for n, kl, ku in BAND_CONFIGS:
            ab = random_band(n, kl, ku, seed=9)
            piv, _ = gbtf2(n, n, kl, ku, ab)
            for j, p in enumerate(piv):
                assert j <= p <= min(j + kl, n - 1)
