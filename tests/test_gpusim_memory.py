"""Unit tests for device buffers, pointer arrays, and traffic counters."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpusim import DeviceBuffer, PointerArray, TrafficCounter


class TestTrafficCounter:
    def test_accumulates(self):
        t = TrafficCounter()
        t.read(100)
        t.write(50)
        t.read(1)
        assert t.bytes_read == 101
        assert t.bytes_written == 50
        assert t.total == 151

    def test_reset(self):
        t = TrafficCounter()
        t.read(10)
        t.reset()
        assert t.total == 0


class TestDeviceBuffer:
    def test_roundtrip(self):
        host = np.arange(12.0).reshape(3, 4)
        buf = DeviceBuffer.from_host(host)
        out = buf.download()
        np.testing.assert_array_equal(out, host)
        # Download is a copy, not a view.
        out[0, 0] = 99
        assert buf.array[0, 0] == 0.0

    def test_upload_shape_mismatch(self):
        buf = DeviceBuffer((3, 4))
        with pytest.raises(DeviceError):
            buf.upload(np.zeros((4, 3)))

    def test_nbytes(self):
        assert DeviceBuffer((4,), dtype=np.float64).nbytes == 32


class TestPointerArray:
    def test_basic(self):
        mats = [np.zeros((3, 3)), np.zeros((3, 3))]
        pa = PointerArray(mats)
        assert len(pa) == 2
        assert pa.dtype == np.float64
        assert pa.uniform_shape() == (3, 3)
        assert pa[1] is mats[1]

    def test_nonuniform_shapes_allowed(self):
        pa = PointerArray([np.zeros((3, 3)), np.zeros((5, 5))])
        assert pa.uniform_shape() is None

    def test_mixed_dtypes_rejected(self):
        with pytest.raises(DeviceError):
            PointerArray([np.zeros(3), np.zeros(3, dtype=np.float32)])

    def test_from_stack_views(self):
        stack = np.arange(24.0).reshape(2, 3, 4)
        pa = PointerArray.from_stack(stack)
        pa[0][0, 0] = -1.0
        assert stack[0, 0, 0] == -1.0      # views, not copies

    def test_empty_dtype_raises(self):
        with pytest.raises(DeviceError):
            PointerArray([]).dtype

    def test_iteration(self):
        mats = [np.ones(2), np.ones(2)]
        assert sum(m.sum() for m in PointerArray(mats)) == 4.0
