"""Benchmark harness internals: timing entry points, streams, reporting."""

import math

import numpy as np
import pytest

from repro.bench import (
    FigureResult,
    SpeedupRow,
    fig3,
    format_figure,
    format_speedup_table,
    geomean,
    run_streamed,
    time_cpu_gbsv,
    time_cpu_gbtrf,
    time_gbsv,
    time_gbtrf,
    time_gbtrs,
)
from repro.bench.harness import shape_only_batch
from repro.errors import SharedMemoryError
from repro.gpusim import H100_PCIE, MI250X_GCD
from repro.gpusim.blas_kernels import GemvKernel


class TestHarness:
    def test_shape_only_batch_aliases(self):
        mats = shape_only_batch(16, 2, 3, 100)
        assert len(mats) == 100
        assert mats[0] is mats[99]
        assert mats[0].shape == (8, 16)

    def test_time_gbtrf_positive_and_deterministic(self):
        t1 = time_gbtrf(H100_PCIE, 128, 2, 3)
        t2 = time_gbtrf(H100_PCIE, 128, 2, 3)
        assert t1 == t2 > 0

    def test_time_scales_with_batch(self):
        small = time_gbtrf(H100_PCIE, 512, 2, 3, batch=500)
        large = time_gbtrf(H100_PCIE, 512, 2, 3, batch=4000)
        assert large > small

    def test_window_time_linear_in_n(self):
        t1 = time_gbtrf(H100_PCIE, 256, 2, 3, method="window")
        t2 = time_gbtrf(H100_PCIE, 1024, 2, 3, method="window")
        assert 2.5 < t2 / t1 < 5.5

    def test_fused_raises_when_unlaunchable(self):
        with pytest.raises(SharedMemoryError):
            time_gbtrf(MI250X_GCD, 2048, 2, 3, method="fused")

    def test_gbtrs_time_scales_with_nrhs(self):
        t1 = time_gbtrs(H100_PCIE, 256, 2, 3, 1)
        t10 = time_gbtrs(H100_PCIE, 256, 2, 3, 10)
        assert t1 < t10 < 10 * t1

    def test_gbsv_standard_is_sum_of_parts(self):
        n = 256
        t_sv = time_gbsv(H100_PCIE, n, 2, 3, 1, method="standard")
        t_trf = time_gbtrf(H100_PCIE, n, 2, 3)
        t_trs = time_gbtrs(H100_PCIE, n, 2, 3, 1)
        assert t_sv == pytest.approx(t_trf + t_trs, rel=1e-9)

    def test_cpu_times_positive(self):
        assert time_cpu_gbtrf(128, 2, 3) > 0
        assert time_cpu_gbsv(128, 2, 3, 1) > 0


class TestStreamedExecutor:
    def _kernels(self, n, count):
        a = np.zeros((n, n))
        x = np.zeros(n)
        return [GemvKernel(a, x, x)] * count

    def test_host_dispatch_serialises(self):
        res = run_streamed(H100_PCIE, self._kernels(64, 100),
                           num_streams=16)
        assert res.host_time == pytest.approx(
            100 * H100_PCIE.launch_overhead)
        assert res.makespan >= res.host_time

    def test_more_streams_never_slower(self):
        ks = self._kernels(512, 64)
        t4 = run_streamed(H100_PCIE, ks, num_streams=4).makespan
        t16 = run_streamed(H100_PCIE, ks, num_streams=16).makespan
        assert t16 <= t4 * 1.001

    def test_dram_floor_enforced(self):
        ks = self._kernels(2048, 64)
        res = run_streamed(H100_PCIE, ks, num_streams=16)
        total_dram = sum(k.grid() * k.block_cost().dram_traffic for k in ks)
        assert res.makespan >= total_dram / H100_PCIE.dram_bandwidth

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            run_streamed(H100_PCIE, [], num_streams=0)

    def test_functional_execution_option(self):
        a = np.arange(16.0).reshape(4, 4)
        x = np.ones(4)
        y = np.zeros(4)
        run_streamed(H100_PCIE, [GemvKernel(a, x, y)], execute=True)
        np.testing.assert_allclose(y, a @ x)


class TestReporting:
    def test_figure_add_validates_length(self):
        fig = FigureResult(title="t", xlabel="n", xs=[1, 2, 3])
        with pytest.raises(ValueError):
            fig.add("bad", [1.0, 2.0])

    def test_series_lookup(self):
        fig = FigureResult(title="t", xlabel="n", xs=[1])
        fig.add("a", [1.0])
        assert fig.series_by_label("a").times == [1.0]
        with pytest.raises(KeyError):
            fig.series_by_label("b")

    def test_format_figure_marks_failures(self):
        fig = FigureResult(title="T", xlabel="n", xs=[1, 2])
        fig.add("dev", [1e-3, float("nan")])
        text = format_figure(fig)
        assert "failed" in text
        assert "1.0000" in text

    def test_format_speedup_table(self):
        rows = [SpeedupRow("cfg", [1.0, 2.0, 3.0], 1.5, 2.5, 2.0)]
        text = format_speedup_table("T", rows)
        assert "1.00" in text and "3.00" in text and "2.00" in text
        assert "paper" in text

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geomean([]))

    def test_fig3_quick(self):
        fig = fig3(2, 3, sizes=[64, 448])
        assert len(fig.series) == 3
        assert all(len(s.times) == 2 for s in fig.series)
