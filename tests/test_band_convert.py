"""Unit tests for dense <-> band conversions."""

import numpy as np
import pytest

from repro.band.convert import (
    band_batch_to_dense,
    band_to_dense,
    bandwidth_of_dense,
    dense_batch_to_band,
    dense_to_band,
)
from repro.band.generate import random_band_dense
from repro.errors import ArgumentError

from conftest import BAND_CONFIGS


class TestRoundTrip:
    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    def test_square_roundtrip(self, n, kl, ku):
        a = random_band_dense(n, n, kl, ku, seed=1)
        ab = dense_to_band(a, kl, ku)
        back = band_to_dense(ab, n, kl, ku)
        np.testing.assert_array_equal(a, back)

    @pytest.mark.parametrize("m,n", [(5, 9), (9, 5), (1, 7), (7, 1)])
    def test_rectangular_roundtrip(self, m, n):
        a = random_band_dense(m, n, 2, 3, seed=2)
        ab = dense_to_band(a, 2, 3)
        np.testing.assert_array_equal(band_to_dense(ab, m, 2, 3), a)

    def test_storage_layout_roundtrip(self):
        a = random_band_dense(8, 8, 2, 3, seed=3)
        ab = dense_to_band(a, 2, 3, factor_layout=False)
        assert ab.shape == (6, 8)
        back = band_to_dense(ab, 8, 2, 3, factor_layout=False)
        np.testing.assert_array_equal(a, back)

    def test_scipy_solve_banded_layout_compat(self):
        """Our storage layout slices directly into scipy's convention."""
        from scipy.linalg import solve_banded
        a = random_band_dense(8, 8, 2, 3, seed=4) + 4 * np.eye(8)
        ab = dense_to_band(a, 2, 3, factor_layout=True)
        b = np.arange(8.0)
        x = solve_banded((2, 3), ab[2:, :], b)
        np.testing.assert_allclose(a @ x, b, atol=1e-12)


class TestDenseToBand:
    def test_diagonal_lands_on_klku_row(self):
        a = np.diag(np.arange(1.0, 6.0))
        ab = dense_to_band(a, 2, 3)
        np.testing.assert_array_equal(ab[5], np.arange(1.0, 6.0))

    def test_out_of_band_entries_ignored(self):
        a = np.ones((6, 6))
        ab = dense_to_band(a, 1, 1)
        back = band_to_dense(ab, 6, 1, 1)
        expected = np.triu(np.tril(a, 1), -1)
        np.testing.assert_array_equal(back, expected)

    def test_custom_ldab(self):
        a = random_band_dense(6, 6, 1, 1, seed=5)
        ab = dense_to_band(a, 1, 1, ldab=10)
        assert ab.shape == (10, 6)
        np.testing.assert_array_equal(band_to_dense(ab, 6, 1, 1), a)

    def test_rejects_1d(self):
        with pytest.raises(ArgumentError):
            dense_to_band(np.ones(4), 1, 1)

    def test_rejects_small_ldab(self):
        with pytest.raises(ArgumentError):
            dense_to_band(np.eye(4), 1, 1, ldab=3)


class TestFilledUnpack:
    def test_filled_recovers_fillin_diagonals(self):
        """After factorization U spills into the kl fill-in rows."""
        from repro.core.gbtf2 import gbtf2
        from repro.band.generate import random_band
        n, kl, ku = 12, 2, 3
        ab = random_band(n, kl, ku, seed=6)
        dense = band_to_dense(ab, n, kl, ku)
        gbtf2(n, n, kl, ku, ab)
        u = np.triu(band_to_dense(ab, n, kl, ku, filled=True))
        # U must have bandwidth kl+ku and reproduce PA = LU.
        for d in range(kl + ku + 1, n):
            assert not np.diagonal(u, d).any()
        assert np.abs(np.diagonal(u, kl + ku)).sum() >= 0  # exists


class TestBandwidthOfDense:
    def test_zero_matrix(self):
        assert bandwidth_of_dense(np.zeros((4, 4))) == (0, 0)

    def test_diagonal(self):
        assert bandwidth_of_dense(np.eye(4)) == (0, 0)

    def test_tridiagonal(self):
        a = np.eye(5) + np.eye(5, k=1) + np.eye(5, k=-1)
        assert bandwidth_of_dense(a) == (1, 1)

    def test_asymmetric(self):
        a = np.eye(6) + np.eye(6, k=3)
        assert bandwidth_of_dense(a) == (0, 3)

    def test_tolerance(self):
        a = np.eye(5) + 1e-12 * np.eye(5, k=2)
        assert bandwidth_of_dense(a) == (0, 2)
        assert bandwidth_of_dense(a, tol=1e-10) == (0, 0)

    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    def test_generated_matrices_are_tight(self, n, kl, ku):
        a = random_band_dense(n, n, kl, ku, seed=7)
        bkl, bku = bandwidth_of_dense(a)
        assert bkl <= min(kl, n - 1) and bku <= min(ku, n - 1)


class TestBatchConversions:
    def test_batch_roundtrip(self):
        batch = np.stack([random_band_dense(6, 6, 1, 2, seed=s)
                          for s in range(4)])
        ab = dense_batch_to_band(batch, 1, 2)
        assert ab.shape == (4, 5, 6)
        back = band_batch_to_dense(ab, 6, 1, 2)
        np.testing.assert_array_equal(back, batch)

    def test_batch_requires_3d(self):
        with pytest.raises(ArgumentError):
            dense_batch_to_band(np.eye(4), 1, 1)
        with pytest.raises(ArgumentError):
            band_batch_to_dense(np.zeros((4, 4)), 4, 1, 1)
