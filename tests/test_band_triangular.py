"""Triangular band solves/products (TBSV/TBMV/TBTRS) and RHS tiling."""

import numpy as np
import pytest

from repro.band.triangular import tbmv, tbsv, tbtrs_batch
from repro.errors import ArgumentError


def _tri_band(uplo, n, k, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    ab = rng.standard_normal((k + 1, n))
    if np.dtype(dtype).kind == "c":
        ab = ab + 1j * rng.standard_normal((k + 1, n))
    ab = ab.astype(dtype)
    drow = k if uplo == "U" else 0
    ab[drow] += 3.0
    return ab


def _dense_of(uplo, n, k, ab, diag="N"):
    a = np.zeros((n, n), dtype=ab.dtype)
    for j in range(n):
        if uplo == "U":
            lo = max(0, j - k)
            a[lo:j + 1, j] = ab[k + lo - j:k + 1, j]
        else:
            hi = min(n, j + k + 1)
            a[j:hi, j] = ab[0:hi - j, j]
        if diag == "U":
            a[j, j] = 1.0
    return a


class TestTbsv:
    @pytest.mark.parametrize("uplo", ["U", "L"])
    @pytest.mark.parametrize("trans", ["N", "T"])
    @pytest.mark.parametrize("diag", ["N", "U"])
    @pytest.mark.parametrize("k", [0, 1, 3, 11])
    def test_matches_dense(self, uplo, trans, diag, k):
        n = 12
        ab = _tri_band(uplo, n, k, seed=k + 1)
        t = _dense_of(uplo, n, k, ab, diag)
        b = np.random.default_rng(k).standard_normal(n)
        x = b.copy()
        tbsv(uplo, trans, diag, n, k, ab, x)
        op = t if trans == "N" else t.T
        np.testing.assert_allclose(op @ x, b, atol=1e-10)

    @pytest.mark.parametrize("uplo", ["U", "L"])
    def test_scipy_blas_equivalence(self, uplo):
        from scipy.linalg import blas
        n, k = 15, 2
        ab = _tri_band(uplo, n, k, seed=9)
        b = np.random.default_rng(10).standard_normal(n)
        x = b.copy()
        tbsv(uplo, "N", "N", n, k, ab, x)
        ref = blas.dtbsv(k, ab, b, lower=(uplo == "L"))
        np.testing.assert_allclose(x, ref, atol=1e-13)

    def test_conj_trans_complex(self):
        n, k = 10, 2
        ab = _tri_band("L", n, k, dtype=np.complex128, seed=11)
        t = _dense_of("L", n, k, ab)
        b = (np.random.default_rng(12).standard_normal(n)
             + 1j * np.random.default_rng(13).standard_normal(n))
        x = b.copy()
        tbsv("L", "C", "N", n, k, ab, x)
        np.testing.assert_allclose(t.conj().T @ x, b, atol=1e-10)

    def test_multiple_rhs(self):
        n, k = 9, 2
        ab = _tri_band("U", n, k, seed=14)
        t = _dense_of("U", n, k, ab)
        b = np.random.default_rng(15).standard_normal((n, 3))
        x = b.copy()
        tbsv("U", "N", "N", n, k, ab, x)
        np.testing.assert_allclose(t @ x, b, atol=1e-10)

    def test_validation(self):
        ab = np.ones((3, 5))
        with pytest.raises(ArgumentError):
            tbsv("X", "N", "N", 5, 2, ab, np.ones(5))
        with pytest.raises(ArgumentError):
            tbsv("U", "N", "N", 5, 4, ab, np.ones(5))
        with pytest.raises(ArgumentError):
            tbsv("U", "N", "N", 5, 2, ab, np.ones(4))


class TestTbmv:
    @pytest.mark.parametrize("uplo", ["U", "L"])
    @pytest.mark.parametrize("trans", ["N", "T"])
    @pytest.mark.parametrize("diag", ["N", "U"])
    def test_matches_dense_product(self, uplo, trans, diag):
        n, k = 11, 3
        ab = _tri_band(uplo, n, k, seed=16)
        t = _dense_of(uplo, n, k, ab, diag)
        x0 = np.random.default_rng(17).standard_normal(n)
        x = x0.copy()
        tbmv(uplo, trans, diag, n, k, ab, x)
        op = t if trans == "N" else t.T
        np.testing.assert_allclose(x, op @ x0, atol=1e-12)

    def test_roundtrip_with_tbsv(self):
        n, k = 13, 2
        ab = _tri_band("L", n, k, seed=18)
        x0 = np.random.default_rng(19).standard_normal(n)
        x = x0.copy()
        tbsv("L", "N", "N", n, k, ab, x)
        tbmv("L", "N", "N", n, k, ab, x)
        np.testing.assert_allclose(x, x0, atol=1e-10)


class TestTbtrsBatch:
    def test_mixed_singular_batch(self):
        n, k = 8, 2
        ok = _tri_band("L", n, k, seed=20)
        bad = ok.copy()
        bad[0, 3] = 0.0
        rng = np.random.default_rng(21)
        b = [rng.standard_normal((n, 2)) for _ in range(2)]
        b_orig = [x.copy() for x in b]
        info = tbtrs_batch("L", "N", "N", n, k, [ok, bad], b)
        assert info[0] == 0 and info[1] == 4
        t = _dense_of("L", n, k, ok)
        np.testing.assert_allclose(t @ b[0], b_orig[0], atol=1e-10)
        np.testing.assert_array_equal(b[1], b_orig[1])

    def test_unit_diag_ignores_zero_diagonal(self):
        n, k = 6, 1
        ab = _tri_band("L", n, k, seed=22)
        ab[0, 2] = 0.0
        b = [np.random.default_rng(23).standard_normal((n, 1))]
        info = tbtrs_batch("L", "N", "U", n, k, [ab], b)
        assert info[0] == 0
        assert np.isfinite(b[0]).all()


class TestRhsTiling:
    def test_all_tiles_bitwise_equal(self):
        from repro.band.generate import random_band_batch, random_rhs
        from repro.core.gbtrf import gbtrf_batch
        from repro.core.gbtrs import gbtrs_batch
        n, kl, ku, nrhs = 33, 3, 2, 7
        a = random_band_batch(2, n, kl, ku, seed=24)
        b = random_rhs(n, nrhs, batch=2, seed=25)
        piv, _ = gbtrf_batch(n, n, kl, ku, a)
        full = b.copy()
        gbtrs_batch("N", n, kl, ku, nrhs, a, piv, full)
        for tile in (1, 2, 3, 7, 100):
            x = b.copy()
            gbtrs_batch("N", n, kl, ku, nrhs, a, piv, x, rhs_tile=tile)
            np.testing.assert_allclose(x, full, atol=0)

    def test_tiling_shrinks_smem_and_adds_passes(self):
        from repro.band.generate import random_band_batch, random_rhs
        from repro.core.gbtrs_blocked import BlockedForwardKernel
        n, kl, ku, nrhs = 32, 2, 3, 8
        a = random_band_batch(1, n, kl, ku, seed=26)
        piv = [np.zeros(n, dtype=np.int64)]
        b = [random_rhs(n, nrhs, seed=27)]
        tiled = BlockedForwardKernel(n, kl, ku, nrhs, list(a), piv, b,
                                     rhs_tile=2)
        full = BlockedForwardKernel(n, kl, ku, nrhs, list(a), piv, b)
        assert tiled.smem_bytes() == full.smem_bytes() // 4
        assert tiled.block_cost().dram_traffic > \
            full.block_cost().dram_traffic

    def test_invalid_tile(self):
        from repro.band.generate import random_band_batch
        from repro.core.gbtrs_blocked import BlockedForwardKernel
        a = random_band_batch(1, 8, 1, 1, seed=28)
        with pytest.raises(ValueError, match="rhs_tile"):
            BlockedForwardKernel(8, 1, 1, 1, list(a),
                                 [np.zeros(8, dtype=np.int64)],
                                 [np.zeros((8, 1))], rhs_tile=0)
