"""Equilibration, condition estimation, and iterative refinement."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense, dense_to_band
from repro.band.generate import (
    graded_condition_band,
    random_band,
    random_band_batch,
    random_rhs,
)
from repro.band.ops import band_norm_1, band_norm_inf
from repro.core import (
    gbcon,
    gbcon_batch,
    gbequ,
    gbequ_batch,
    gbrfs,
    gbrfs_batch,
    gbsv_batch,
    gbsv_refined_batch,
    gbtrf_batch,
    laqgb,
    laqgb_batch,
    onenorm_inv_estimate,
)
from repro.core.gbtf2 import gbtf2
from repro.errors import ArgumentError

from conftest import BAND_CONFIGS


class TestGbequ:
    def test_scalings_give_unit_row_maxima(self):
        n, kl, ku = 16, 2, 3
        ab = graded_condition_band(n, kl, ku, cond=1e8, seed=0)
        r, c, rowcnd, colcnd, amax, info = gbequ(n, n, kl, ku, ab)
        assert info == 0
        a = band_to_dense(ab, n, kl, ku)
        scaled = np.diag(r) @ a @ np.diag(c)
        np.testing.assert_allclose(np.abs(scaled).max(axis=1),
                                   np.ones(n), atol=1e-12)
        assert np.abs(scaled).max(axis=0).max() <= 1 + 1e-12

    def test_amax_is_largest_entry(self):
        n, kl, ku = 10, 1, 2
        ab = random_band(n, kl, ku, seed=1)
        _, _, _, _, amax, _ = gbequ(n, n, kl, ku, ab)
        assert amax == pytest.approx(
            np.abs(band_to_dense(ab, n, kl, ku)).max())

    def test_zero_row_reported(self):
        n = 6
        dense = np.eye(n)
        dense[3, 3] = 0.0
        ab = dense_to_band(dense, 1, 1)
        r, c, rowcnd, colcnd, amax, info = gbequ(n, n, 1, 1, ab)
        assert info == 4            # 1-based row index

    def test_zero_column_reported(self):
        n = 6
        dense = np.eye(n) + np.eye(n, k=1)
        dense[2, 2] = 0.0           # row 2 still has the superdiag entry
        ab = dense_to_band(dense, 0, 1)
        r, c, rowcnd, colcnd, amax, info = gbequ(n, n, 0, 1, ab)
        # column 2's only entries were (1,2) superdiag and (2,2): the
        # column is not zero, so this matrix equilibrates fine.
        assert info == 0

    def test_laqgb_improves_conditioning(self):
        n, kl, ku = 24, 2, 3
        ab = graded_condition_band(n, kl, ku, cond=1e9, seed=2)
        before = np.linalg.cond(band_to_dense(ab, n, kl, ku))
        r, c, rowcnd, colcnd, _, info = gbequ(n, n, kl, ku, ab)
        equed = laqgb(n, n, kl, ku, ab, r, c, rowcnd, colcnd)
        after = np.linalg.cond(band_to_dense(ab, n, kl, ku))
        assert equed in ("R", "C", "B")
        assert after < before / 100

    def test_laqgb_skips_well_scaled(self):
        n, kl, ku = 10, 1, 1
        ab = random_band(n, kl, ku, seed=3) + 0.0
        # random_band entries are O(1): already well scaled.
        r, c, rowcnd, colcnd, _, _ = gbequ(n, n, kl, ku, ab)
        before = ab.copy()
        assert laqgb(n, n, kl, ku, ab, r, c, rowcnd, colcnd) == "N"
        np.testing.assert_array_equal(ab, before)

    def test_batched_matches_single(self):
        n, kl, ku = 12, 2, 1
        a = random_band_batch(3, n, kl, ku, seed=4)
        rs, cs, rowcnds, colcnds, amaxs, info = gbequ_batch(n, n, kl, ku, a)
        for k in range(3):
            r, c, rowcnd, colcnd, amax, inf = gbequ(n, n, kl, ku, a[k])
            np.testing.assert_allclose(rs[k], r)
            np.testing.assert_allclose(cs[k], c)
            assert (rowcnds[k], colcnds[k], amaxs[k], info[k]) == \
                (rowcnd, colcnd, amax, inf)
        equeds = laqgb_batch(n, n, kl, ku, a, rs, cs, rowcnds, colcnds)
        assert len(equeds) == 3


class TestGbcon:
    @pytest.mark.parametrize("cond", [1e2, 1e5, 1e8])
    def test_estimate_tracks_true_condition(self, cond):
        n, kl, ku = 20, 2, 3
        ab = graded_condition_band(n, kl, ku, cond=cond, seed=5)
        a = band_to_dense(ab, n, kl, ku)
        anorm = band_norm_1(ab, n, kl, ku)
        fact = ab.copy()
        piv, info = gbtf2(n, n, kl, ku, fact)
        assert info == 0
        rcond = gbcon("1", n, kl, ku, fact, piv, anorm)
        true = 1.0 / (np.linalg.norm(a, 1)
                      * np.linalg.norm(np.linalg.inv(a), 1))
        # Higham: the estimate is a lower bound on ||A^{-1}||, so rcond is
        # an upper bound on the true rcond, rarely off by more than ~3x.
        assert true <= rcond * 1.000001
        assert rcond <= 10 * true

    def test_inf_norm_variant(self):
        n, kl, ku = 16, 3, 2
        ab = graded_condition_band(n, kl, ku, cond=1e5, seed=6)
        a = band_to_dense(ab, n, kl, ku)
        anorm = band_norm_inf(ab, n, kl, ku)
        fact = ab.copy()
        piv, _ = gbtf2(n, n, kl, ku, fact)
        rcond = gbcon("I", n, kl, ku, fact, piv, anorm)
        true = 1.0 / (np.linalg.norm(a, np.inf)
                      * np.linalg.norm(np.linalg.inv(a), np.inf))
        assert true <= rcond * 1.000001
        assert rcond <= 10 * true

    def test_singular_factor_gives_zero(self):
        n = 8
        fact = np.zeros((4, n))
        piv = np.arange(n)
        assert gbcon("1", n, 1, 1, fact, piv, 1.0) == 0.0

    def test_zero_anorm_gives_zero(self):
        n, kl, ku = 8, 1, 1
        ab = random_band(n, kl, ku, seed=7)
        fact = ab.copy()
        piv, _ = gbtf2(n, n, kl, ku, fact)
        assert gbcon("1", n, kl, ku, fact, piv, 0.0) == 0.0

    def test_invalid_norm(self):
        with pytest.raises(ArgumentError):
            gbcon("F", 4, 1, 1, np.zeros((4, 4)), np.arange(4), 1.0)

    def test_identity_is_perfectly_conditioned(self):
        n = 10
        ab = dense_to_band(np.eye(n), 1, 1)
        fact = ab.copy()
        piv, _ = gbtf2(n, n, 1, 1, fact)
        assert gbcon("1", n, 1, 1, fact, piv, 1.0) == pytest.approx(1.0)

    def test_batched(self):
        n, kl, ku = 12, 2, 3
        a = np.stack([graded_condition_band(n, kl, ku, cond=10.0 ** e,
                                            seed=e) for e in (1, 4, 7)])
        anorms = [band_norm_1(a[k], n, kl, ku) for k in range(3)]
        fact = a.copy()
        piv, info = gbtrf_batch(n, n, kl, ku, fact)
        rconds = gbcon_batch("1", n, kl, ku, fact, piv, anorms)
        # Monotone: bigger generated condition -> smaller rcond.
        assert rconds[0] > rconds[1] > rconds[2]

    def test_estimator_exact_on_diagonal(self):
        n = 6
        d = np.array([1.0, 2.0, 4.0, 8.0, 0.5, 0.25])
        est = onenorm_inv_estimate(
            n, lambda v: v / d, lambda v: v / d)
        assert est == pytest.approx(1.0 / 0.25)


class TestGbrfs:
    def test_refinement_reduces_backward_error(self):
        n, kl, ku = 32, 2, 3
        ab = random_band(n, kl, ku, seed=8)
        b = random_rhs(n, 2, seed=9)
        # Factor in float32 to create a genuinely sloppy solve.
        low = ab.astype(np.float32)
        piv = np.zeros(n, dtype=np.int64)
        from repro.core.gbtf2 import gbtf2 as _f
        _f(n, n, kl, ku, low, piv)
        x = b.astype(np.float32)
        from repro.core.solve_blocks import gbtrs_unblocked
        gbtrs_unblocked("N", n, kl, ku, low, piv, x)
        x = x.astype(np.float64)
        res = gbrfs(n, kl, ku, ab, low, piv, b, x)
        assert res.converged
        assert res.iterations >= 1
        a = band_to_dense(ab, n, kl, ku)
        np.testing.assert_allclose(a @ x, b, atol=1e-11)

    def test_exact_solution_needs_no_iterations(self):
        n, kl, ku = 16, 1, 2
        ab = random_band(n, kl, ku, seed=10)
        fact = ab.copy()
        piv, _ = gbtf2(n, n, kl, ku, fact)
        b = random_rhs(n, 1, seed=11)
        from repro.core.solve_blocks import gbtrs_unblocked
        x = gbtrs_unblocked("N", n, kl, ku, fact, piv, b.copy())
        res = gbrfs(n, kl, ku, ab, fact, piv, b, x)
        assert res.converged
        assert res.iterations <= 1

    def test_shape_mismatch_rejected(self):
        n = 8
        ab = random_band(n, 1, 1, seed=12)
        with pytest.raises(ArgumentError):
            gbrfs(n, 1, 1, ab, ab, np.arange(n), np.zeros((n, 2)),
                  np.zeros((n, 3)))

    def test_batched_refinement(self):
        n, kl, ku, nrhs = 24, 2, 3, 2
        a = random_band_batch(3, n, kl, ku, seed=13)
        b = random_rhs(n, nrhs, batch=3, seed=14)
        low = a.astype(np.float32)
        piv, info = gbtrf_batch(n, n, kl, ku, low)
        x = b.astype(np.float32)
        from repro.core.gbtrs import gbtrs_batch
        gbtrs_batch("N", n, kl, ku, nrhs, low, piv, x)
        x = x.astype(np.float64)
        results = gbrfs_batch(n, kl, ku, nrhs, a, low, piv, b, list(x))
        assert all(r.converged for r in results)
        for k in range(3):
            dense = band_to_dense(a[k], n, kl, ku)
            np.testing.assert_allclose(dense @ x[k], b[k], atol=1e-11)


class TestMixedPrecisionDriver:
    def test_recovers_double_accuracy_from_float32_factors(self):
        n, kl, ku, nrhs = 48, 2, 3, 2
        a = random_band_batch(4, n, kl, ku, seed=15)
        b = random_rhs(n, nrhs, batch=4, seed=16)
        x, info, results = gbsv_refined_batch(n, kl, ku, nrhs, a, b)
        assert (info == 0).all()
        assert all(r.converged for r in results)
        # Accuracy comparable to a full fp64 solve.
        a64, b64 = a.copy(), b.copy()
        gbsv_batch(n, kl, ku, nrhs, a64, None, b64)
        np.testing.assert_allclose(x, b64, atol=1e-9)

    def test_inputs_left_untouched(self):
        n = 16
        a = random_band_batch(2, n, 1, 1, seed=17)
        b = random_rhs(n, 1, batch=2, seed=18)
        a0, b0 = a.copy(), b.copy()
        gbsv_refined_batch(n, 1, 1, 1, a, b)
        np.testing.assert_array_equal(a, a0)
        np.testing.assert_array_equal(b, b0)

    def test_refinement_beats_raw_low_precision(self):
        n, kl, ku = 64, 2, 3
        a = random_band_batch(2, n, kl, ku, seed=19)
        b = random_rhs(n, 1, batch=2, seed=20)
        x, info, _ = gbsv_refined_batch(n, kl, ku, 1, a, b)
        a32, b32 = a.astype(np.float32), b.astype(np.float32)
        gbsv_batch(n, kl, ku, 1, a32, None, b32)
        dense = band_to_dense(a[0], n, kl, ku)
        err_refined = np.abs(dense @ x[0] - b[0]).max()
        err_raw = np.abs(dense @ b32[0].astype(np.float64) - b[0]).max()
        assert err_refined < err_raw / 100

    def test_singular_low_precision_falls_back(self):
        n = 8
        ok = random_band(n, 1, 1, seed=21)
        # Values below float32's tiny threshold underflow to an exactly
        # singular fp32 matrix, forcing the fp64 fallback path.
        tiny = ok * 1e-60
        a = [ok, tiny]
        b = [random_rhs(n, 1, seed=22), random_rhs(n, 1, seed=23)]
        x, info, results = gbsv_refined_batch(n, 1, 1, 1, a, b, batch=2)
        assert (info == 0).all()
        assert results[1].iterations == -1      # fallback marker
        dense = band_to_dense(tiny, n, 1, 1)
        np.testing.assert_allclose(dense @ x[1], b[1], atol=1e-9,
                                   rtol=1e-6)

    def test_truly_singular_problem_raises(self):
        """Unlike LAPACK's info codes, the mixed-precision driver promises
        a solution — exact singularity must raise, not return garbage."""
        from repro.errors import SingularMatrixError
        n = 8
        ok = random_band(n, 1, 1, seed=30)
        singular = np.zeros((4, n))
        b = [random_rhs(n, 1, seed=31), random_rhs(n, 1, seed=32)]
        with pytest.raises(SingularMatrixError) as exc:
            gbsv_refined_batch(n, 1, 1, 1, [ok, singular], b, batch=2)
        assert exc.value.index == 1
        assert exc.value.info >= 1
