"""Execution-graph capture and replay."""

import numpy as np
import pytest

from repro.band.generate import random_band_batch, random_rhs
from repro.core.gbsv import gbsv_batch
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch
from repro.errors import DeviceError
from repro.gpusim import H100_PCIE, Stream, capture_graph


def _reference_truth(n, kl, ku, a):
    ref = a.copy()
    for k in range(ref.shape[0]):
        gbtf2(n, n, kl, ku, ref[k])
    return ref


class TestCapture:
    def test_nothing_executes_during_capture(self):
        n, kl, ku = 16, 2, 3
        a = random_band_batch(2, n, kl, ku, seed=0)
        before = a.copy()
        with capture_graph(H100_PCIE) as g:
            gbtrf_batch(n, n, kl, ku, a, method="reference",
                        stream=g.stream)
        np.testing.assert_array_equal(a, before)
        assert g.graph.num_nodes == 1 + 2 * n  # init + fork-join pairs

    def test_capture_charges_no_time(self):
        n = 16
        a = random_band_batch(2, n, 2, 3, seed=1)
        with capture_graph(H100_PCIE) as g:
            gbtrf_batch(n, n, 2, 3, a, method="reference", stream=g.stream)
        assert g.stream.elapsed == 0.0

    def test_launch_after_capture_ends_rejected(self):
        from repro.gpusim import launch
        n = 8
        a = random_band_batch(1, n, 1, 1, seed=2)
        with capture_graph(H100_PCIE) as g:
            pass
        with pytest.raises(DeviceError):
            gbtrf_batch(n, n, 1, 1, a, method="reference", stream=g.stream)


class TestReplay:
    def test_replay_reproduces_factorization(self):
        n, kl, ku = 20, 2, 3
        a = random_band_batch(3, n, kl, ku, seed=3)
        truth = _reference_truth(n, kl, ku, a)
        with capture_graph(H100_PCIE) as g:
            gbtrf_batch(n, n, kl, ku, a, method="reference",
                        stream=g.stream)
        stream = Stream(H100_PCIE)
        rec = g.graph.launch(stream=stream)
        np.testing.assert_allclose(a, truth, atol=0)
        assert stream.launch_count() == 1
        assert rec.kernel_name.startswith("graph[")

    def test_replay_on_updated_data(self):
        """The CUDA-graph pattern: re-run the same pipeline on new data."""
        n, kl, ku = 12, 1, 2
        a = random_band_batch(2, n, kl, ku, seed=4)
        with capture_graph(H100_PCIE) as g:
            gbtrf_batch(n, n, kl, ku, a, method="reference",
                        stream=g.stream)
        # First replay.
        g.graph.launch()
        first = a.copy()
        # Refill with different data and replay again.
        a[...] = random_band_batch(2, n, kl, ku, seed=5)
        truth = _reference_truth(n, kl, ku, a)
        g.graph.launch()
        np.testing.assert_allclose(a, truth, atol=0)
        assert not np.allclose(a, first)

    def test_replay_cheaper_than_eager(self):
        """Graphs amortise the fork-join design's launch storm."""
        n, kl, ku = 64, 2, 3
        a = random_band_batch(2, n, kl, ku, seed=6)
        with capture_graph(H100_PCIE) as g:
            gbtrf_batch(n, n, kl, ku, a, method="reference",
                        stream=g.stream, execute=False)
        eager = Stream(H100_PCIE)
        gbtrf_batch(n, n, kl, ku, a.copy(), method="reference",
                    stream=eager, execute=False)
        assert g.graph.replay_time() < eager.elapsed / 2

    def test_graph_still_loses_to_window_design(self):
        """Launch amortisation cannot buy back the redundant traffic."""
        from repro.bench.harness import time_gbtrf
        n, kl, ku = 256, 2, 3
        a = random_band_batch(1, n, kl, ku, seed=7)
        with capture_graph(H100_PCIE) as g:
            gbtrf_batch(n, n, kl, ku, a, method="reference",
                        stream=g.stream, batch=1000 * 0 + 1,
                        execute=False)
        # Scale the single-matrix capture to the batch-1000 workload by
        # re-capturing with the shape-only batch.
        from repro.bench.harness import shape_only_batch
        mats = shape_only_batch(n, kl, ku, 1000)
        with capture_graph(H100_PCIE) as g2:
            gbtrf_batch(n, n, kl, ku, mats, batch=1000,
                        method="reference", stream=g2.stream,
                        execute=False)
        t_window = time_gbtrf(H100_PCIE, n, kl, ku, method="window")
        assert g2.graph.replay_time() > t_window

    def test_empty_graph_rejected(self):
        with capture_graph(H100_PCIE) as g:
            pass
        with pytest.raises(DeviceError):
            g.graph.launch()

    def test_gbsv_pipeline_capture(self):
        """A multi-kernel pipeline (factor+solves) captures and replays."""
        n, kl, ku = 96, 2, 3
        a = random_band_batch(2, n, kl, ku, seed=8)
        b = random_rhs(n, 1, batch=2, seed=9)
        a_ref, b_ref = a.copy(), b.copy()
        gbsv_batch(n, kl, ku, 1, a_ref, None, b_ref)
        with capture_graph(H100_PCIE) as g:
            gbsv_batch(n, kl, ku, 1, a, None, b, stream=g.stream)
        assert g.graph.num_nodes == 3     # gbtrf + fwd + bwd
        g.graph.launch()
        np.testing.assert_allclose(b, b_ref, atol=0)
