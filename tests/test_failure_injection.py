"""Failure injection: singularity, NaNs, degenerate shapes, bad arguments."""

import numpy as np
import pytest

from repro.band.convert import dense_to_band
from repro.band.generate import random_band, random_band_batch, random_rhs
from repro.core.gbsv import gbsv_batch
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch
from repro.core.gbtrs import gbtrs_batch
from repro.core.solve_blocks import gbtrs_unblocked
from repro.errors import ArgumentError, SharedMemoryError


class TestSingularity:
    def test_zero_matrix_factors_with_info(self):
        n = 8
        a = np.zeros((2, 4, n))
        piv, info = gbtrf_batch(n, n, 1, 1, a)
        assert (info == 1).all()

    def test_info_reports_first_zero_pivot_only(self):
        """Two singular columns: info is the first, LAPACK-style."""
        n = 10
        dense = np.eye(n)
        dense[3, 3] = dense[7, 7] = 0.0
        ab = dense_to_band(dense, 0, 0)
        piv, info = gbtf2(n, n, 0, 0, ab)
        assert info == 4

    def test_factorization_completes_despite_singularity(self):
        """LAPACK: the factorization finishes; only the solve is unsafe."""
        n = 8
        dense = np.diag(np.arange(float(n)))   # first pivot is zero
        dense += np.diag(np.ones(n - 1), 1)
        ab = dense_to_band(dense, 0, 1)
        piv, info = gbtf2(n, n, 0, 1, ab)
        assert info == 1
        assert np.isfinite(ab).all()

    def test_solving_singular_factors_produces_nonfinite(self):
        """Matching LAPACK GBTRS, no guard: division by the zero pivot."""
        n = 6
        ab = dense_to_band(np.zeros((n, n)), 1, 1)
        piv, info = gbtf2(n, n, 1, 1, ab)
        assert info > 0
        x = gbtrs_unblocked("N", n, 1, 1, ab, piv,
                            np.ones((n, 1)))
        assert not np.isfinite(x).all()

    def test_per_problem_singularity_in_batch(self):
        n = 8
        good = random_band(n, 1, 1, seed=1)
        bad = np.zeros((4, n))
        a = [good, bad, good.copy()]
        b = [random_rhs(n, 1, seed=2) for _ in range(3)]
        piv, info = gbsv_batch(n, 1, 1, 1, a, None, b, batch=3)
        assert info[0] == 0 and info[2] == 0
        assert info[1] == 1
        assert np.isfinite(b[0]).all() and np.isfinite(b[2]).all()


class TestNanPropagation:
    def test_nan_input_stays_contained_to_its_problem(self):
        n = 10
        a = random_band_batch(3, n, 2, 3, seed=3)
        a[1, 5, 4] = np.nan
        b = random_rhs(n, 1, batch=3, seed=4)
        piv, info = gbsv_batch(n, 2, 3, 1, a, None, b)
        assert np.isfinite(b[0]).all()
        assert np.isfinite(b[2]).all()
        assert not np.isfinite(b[1]).all()

    def test_nan_rhs_does_not_corrupt_factors(self):
        n = 10
        a = random_band_batch(1, n, 2, 3, seed=5)
        ref = a.copy()
        gbtf2(n, n, 2, 3, ref[0])
        b = np.full((1, n, 1), np.nan)
        gbsv_batch(n, 2, 3, 1, a, None, b)
        np.testing.assert_allclose(a[0], ref[0], atol=0)


class TestDegenerateShapes:
    def test_n_zero(self):
        piv, info = gbtrf_batch(0, 0, 1, 1, np.zeros((2, 4, 0)))
        assert info.shape == (2,)

    def test_batch_zero(self):
        piv, info = gbtrf_batch(8, 8, 1, 1, [], batch=0)
        assert len(piv) == 0

    def test_one_by_one(self):
        a = np.array([[[0.0], [5.0], [0.0]]])   # ldab=3 for kl=ku=... 1x1
        piv, info = gbtrf_batch(1, 1, 1, 0, a)
        assert info[0] == 0 and a[0, 1, 0] == 5.0

    def test_kl_ku_zero_is_diagonal_solve(self):
        n = 6
        d = np.arange(2.0, 8.0)
        ab = d[None, None, :] * np.ones((1, 1, n))
        b = random_rhs(n, 1, batch=1, seed=6)
        x = b.copy()
        gbsv_batch(n, 0, 0, 1, ab.copy(), None, x)
        np.testing.assert_allclose(x[0][:, 0], b[0][:, 0] / d, atol=1e-14)

    def test_band_wider_than_matrix(self):
        n, kl, ku = 4, 7, 9
        a = random_band_batch(2, n, kl, ku, seed=7)
        orig = a.copy()
        b = random_rhs(n, 1, batch=2, seed=8)
        x = b.copy()
        piv, info = gbsv_batch(n, kl, ku, 1, a, None, x)
        assert (info == 0).all()
        from repro.band.convert import band_to_dense
        dense = band_to_dense(orig[0], n, kl, ku)
        np.testing.assert_allclose(dense @ x[0], b[0], atol=1e-11)


class TestBadArguments:
    def test_wrong_matrix_ndim(self):
        with pytest.raises(ArgumentError):
            gbtrf_batch(4, 4, 1, 1, [np.zeros(4)], batch=1)

    def test_stack_wrong_ndim(self):
        with pytest.raises(ArgumentError):
            gbtrf_batch(4, 4, 1, 1, np.zeros((4, 4)))

    def test_error_mentions_shape(self):
        with pytest.raises(ArgumentError, match="needs at least"):
            gbtrf_batch(8, 8, 2, 3, [np.zeros((4, 8))], batch=1)

    def test_trans_selector_validated(self):
        a = random_band_batch(1, 6, 1, 1, seed=9)
        piv, _ = gbtrf_batch(6, 6, 1, 1, a)
        with pytest.raises(ValueError, match="transpose"):
            gbtrs_batch("X", 6, 1, 1, 1, a, piv,
                        random_rhs(6, 1, batch=1))

    def test_shared_memory_error_carries_numbers(self):
        try:
            from repro.gpusim import MI250X_GCD
            gbtrf_batch(2048, 2048, 2, 3,
                        [np.zeros((8, 2048))], batch=1,
                        device=MI250X_GCD, method="fused")
        except SharedMemoryError as e:
            assert e.requested > e.limit
        else:
            pytest.fail("expected SharedMemoryError")
