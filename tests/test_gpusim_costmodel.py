"""Unit tests for the analytic timing model."""

import pytest

from repro.gpusim import BlockCost, H100_PCIE, MI250X_GCD, estimate_block_time, estimate_kernel_time


class TestBlockCost:
    def test_add(self):
        a = BlockCost(flops=10, smem_traffic=20, dram_traffic=30, syncs=2,
                      threads=16)
        b = BlockCost(flops=1, smem_traffic=2, dram_traffic=3, syncs=1,
                      threads=32)
        c = a + b
        assert c.flops == 11 and c.smem_traffic == 22
        assert c.dram_traffic == 33 and c.syncs == 3
        assert c.threads == 32

    def test_scaled(self):
        c = BlockCost(flops=10, smem_traffic=20, syncs=2, threads=8)
        s = c.scaled(3)
        assert s.flops == 30 and s.smem_traffic == 60 and s.syncs == 6
        assert s.threads == 8


class TestBlockTime:
    def test_sync_term(self):
        t = estimate_block_time(H100_PCIE, BlockCost(syncs=100, threads=32))
        assert t == pytest.approx(100 * H100_PCIE.sync_latency)

    def test_components_add(self):
        sync_only = estimate_block_time(H100_PCIE,
                                        BlockCost(syncs=10, threads=32))
        both = estimate_block_time(
            H100_PCIE, BlockCost(syncs=10, smem_traffic=1e6, threads=32))
        assert both > sync_only

    def test_more_threads_speed_compute(self):
        slow = estimate_block_time(H100_PCIE,
                                   BlockCost(flops=1e6, threads=4))
        fast = estimate_block_time(H100_PCIE,
                                   BlockCost(flops=1e6, threads=64))
        assert fast < slow

    def test_lane_utilisation_caps_smem_rate(self):
        """Below a warp of threads, the smem pipe slows proportionally."""
        half = estimate_block_time(
            H100_PCIE, BlockCost(smem_traffic=1e6, threads=16))
        full = estimate_block_time(
            H100_PCIE, BlockCost(smem_traffic=1e6, threads=32))
        beyond = estimate_block_time(
            H100_PCIE, BlockCost(smem_traffic=1e6, threads=64))
        assert half == pytest.approx(2 * full)
        assert beyond == pytest.approx(full)   # saturates at one warp


class TestKernelTime:
    COST = BlockCost(flops=1e4, smem_traffic=1e4, dram_traffic=1e3,
                     syncs=100, threads=32)

    def test_waves_scale_latency_bound_time(self):
        t1 = estimate_kernel_time(H100_PCIE, grid=100,
                                  threads_per_block=32,
                                  smem_per_block=1024,
                                  block_cost=self.COST)
        t10 = estimate_kernel_time(H100_PCIE, grid=36000,
                                   threads_per_block=32,
                                   smem_per_block=1024,
                                   block_cost=self.COST)
        assert t1.waves == 1
        assert t10.waves > 1
        assert t10.exec_time == pytest.approx(
            t10.waves * t1.block_time)

    def test_dram_floor(self):
        heavy = BlockCost(dram_traffic=1e9, threads=256)
        t = estimate_kernel_time(H100_PCIE, grid=1000,
                                 threads_per_block=256,
                                 smem_per_block=0, block_cost=heavy)
        assert not t.latency_bound
        assert t.exec_time == pytest.approx(
            1000 * 1e9 / H100_PCIE.dram_bandwidth)

    def test_small_grid_cannot_saturate_dram(self):
        heavy = BlockCost(dram_traffic=1e9, threads=256)
        t_one = estimate_kernel_time(H100_PCIE, grid=1,
                                     threads_per_block=256,
                                     smem_per_block=0, block_cost=heavy)
        # One block gets only a fraction of the bandwidth.
        assert t_one.exec_time > 1e9 / H100_PCIE.dram_bandwidth

    def test_min_kernel_time_floor(self):
        tiny = BlockCost(flops=1, threads=32)
        t = estimate_kernel_time(H100_PCIE, grid=1, threads_per_block=32,
                                 smem_per_block=0, block_cost=tiny)
        assert t.exec_time == H100_PCIE.min_kernel_time

    def test_total_includes_launch_overhead(self):
        t = estimate_kernel_time(H100_PCIE, grid=10, threads_per_block=32,
                                 smem_per_block=1024, block_cost=self.COST)
        assert t.total == pytest.approx(t.launch_overhead + t.exec_time)

    def test_occupancy_drop_doubles_time(self):
        """Halving residency doubles a latency-bound kernel's time."""
        t2 = estimate_kernel_time(MI250X_GCD, grid=10000,
                                  threads_per_block=32,
                                  smem_per_block=24 * 1024,
                                  block_cost=self.COST)
        t1 = estimate_kernel_time(MI250X_GCD, grid=10000,
                                  threads_per_block=32,
                                  smem_per_block=40 * 1024,
                                  block_cost=self.COST)
        assert t2.occupancy.blocks_per_sm == 2
        assert t1.occupancy.blocks_per_sm == 1
        assert t1.exec_time / t2.exec_time == pytest.approx(2.0, rel=0.05)
