"""Non-uniform batches (the paper's Section 9 extension)."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense
from repro.band.generate import random_band, random_rhs
from repro.core.batched import gbsv_vbatch, gbtrf_vbatch
from repro.core.gbtf2 import gbtf2
from repro.errors import ArgumentError
from repro.gpusim import MI250X_GCD, Stream


def _mixed_problems(seed=0):
    configs = [(12, 1, 1), (20, 2, 3), (12, 1, 1), (30, 10, 7),
               (20, 2, 3), (7, 0, 2)]
    rng = np.random.default_rng(seed)
    mats = [random_band(n, kl, ku, seed=rng) for n, kl, ku in configs]
    return configs, mats


class TestGbtrfVbatch:
    def test_matches_per_problem_factorization(self):
        configs, mats = _mixed_problems()
        refs = []
        for (n, kl, ku), m in zip(configs, mats):
            ab = m.copy()
            piv, info = gbtf2(n, n, kl, ku, ab)
            refs.append((ab, piv, info))
        pivots, info = gbtrf_vbatch(
            [c[0] for c in configs], [c[0] for c in configs],
            [c[1] for c in configs], [c[2] for c in configs], mats)
        for k, (ab_ref, piv_ref, info_ref) in enumerate(refs):
            np.testing.assert_allclose(mats[k], ab_ref, atol=0)
            np.testing.assert_array_equal(pivots[k], piv_ref)
            assert info[k] == info_ref

    def test_info_order_preserved_across_groups(self):
        """info must land at the original problem index, not group order."""
        n = 10
        ok = random_band(n, 1, 1, seed=1)
        singular = np.zeros((4, n))          # zero matrix: info = 1
        mats = [ok.copy(), singular.copy(), ok.copy()]
        pivots, info = gbtrf_vbatch([n] * 3, [n] * 3, [1, 1, 1], [1, 1, 1],
                                    mats)
        assert info[0] == 0 and info[2] == 0
        assert info[1] == 1

    def test_length_mismatch_rejected(self):
        configs, mats = _mixed_problems()
        with pytest.raises(ArgumentError):
            gbtrf_vbatch([8], [8, 8], [1, 1], [1, 1], mats[:2])

    def test_stream_device_used(self):
        configs, mats = _mixed_problems()
        stream = Stream(MI250X_GCD)
        gbtrf_vbatch([c[0] for c in configs], [c[0] for c in configs],
                     [c[1] for c in configs], [c[2] for c in configs],
                     mats, stream=stream)
        # One kernel launch per distinct configuration.
        distinct = len({(c[0], c[0], c[1], c[2]) for c in configs})
        assert stream.launch_count() == distinct


class TestGbsvVbatch:
    def test_solves_mixed_configurations(self):
        configs, mats = _mixed_problems(seed=3)
        originals = [m.copy() for m in mats]
        rng = np.random.default_rng(4)
        nrhss = [1, 2, 1, 3, 2, 1]
        rhs = [random_rhs(n, r, seed=rng)
               for (n, _, _), r in zip(configs, nrhss)]
        b_orig = [b.copy() for b in rhs]
        pivots, info = gbsv_vbatch(
            [c[0] for c in configs], [c[1] for c in configs],
            [c[2] for c in configs], nrhss, mats, rhs)
        assert (info == 0).all()
        for k, (n, kl, ku) in enumerate(configs):
            dense = band_to_dense(originals[k], n, kl, ku)
            np.testing.assert_allclose(dense @ rhs[k], b_orig[k],
                                       atol=1e-10)

    def test_1d_rhs_accepted(self):
        n = 14
        mats = [random_band(n, 2, 3, seed=7)]
        orig = mats[0].copy()
        b = random_rhs(n, 1, seed=8)[:, 0]
        rhs = [b.copy()]
        pivots, info = gbsv_vbatch([n], [2], [3], [1], mats, rhs)
        # The internal (n, 1) view shares memory with the caller's 1-D
        # array, so the solution lands in place.
        dense = band_to_dense(orig, n, 2, 3)
        assert rhs[0].ndim == 1
        np.testing.assert_allclose(dense @ rhs[0], b, atol=1e-11)

    def test_singularity_reported_per_problem(self):
        n = 10
        ok = random_band(n, 1, 1, seed=9)
        singular = np.zeros((4, n))
        mats = [ok.copy(), singular]
        rhs = [random_rhs(n, 1, seed=10), random_rhs(n, 1, seed=11)]
        b1_orig = rhs[1].copy()
        pivots, info = gbsv_vbatch([n, n], [1, 1], [1, 1], [1, 1], mats,
                                   rhs)
        assert info[0] == 0
        assert info[1] > 0
        np.testing.assert_array_equal(rhs[1], b1_orig)
