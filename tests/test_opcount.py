"""Exact operation counts and the pivoting-dependent work spread."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.band.generate import (
    diagonally_dominant_band,
    random_band,
    random_band_batch,
)
from repro.core import (
    OpCount,
    gbtrf_gflops,
    gbtrf_opcount,
    gbtrf_opcount_batch,
    gbtrf_opcount_bounds,
)
from repro.core.gbtf2 import gbtf2
from repro.errors import ArgumentError


class TestOpCount:
    def test_add(self):
        a = OpCount(1, 2, 3, 4)
        b = OpCount(10, 20, 30, 40)
        c = a + b
        assert (c.multiplies, c.additions, c.divisions, c.comparisons) == \
            (11, 22, 33, 44)
        assert c.flops == 11 + 22 + 33

    def test_instrumented_run_matches_gbtf2(self):
        n, kl, ku = 24, 2, 3
        ab = random_band(n, kl, ku, seed=0)
        ref = ab.copy()
        piv_ref, info_ref = gbtf2(n, n, kl, ku, ref)
        count, piv, info = gbtrf_opcount(n, n, kl, ku, ab)
        np.testing.assert_allclose(ab, ref, atol=0)
        np.testing.assert_array_equal(piv, piv_ref)
        assert info == info_ref

    def test_diagonally_dominant_hits_minimum(self):
        """No pivoting -> exactly the closed-form lower bound."""
        n, kl, ku = 40, 3, 2
        lo, hi = gbtrf_opcount_bounds(n, n, kl, ku)
        ab = diagonally_dominant_band(n, kl, ku, seed=1, dominance=4.0)
        count, piv, info = gbtrf_opcount(n, n, kl, ku, ab)
        assert count.flops == lo.flops
        np.testing.assert_array_equal(piv, np.arange(n))

    def test_zero_matrix_does_minimum_comparisons_only(self):
        n = 10
        count, piv, info = gbtrf_opcount(n, n, 1, 1, np.zeros((4, n)))
        assert info == 1
        assert count.flops == 0
        assert count.comparisons > 0

    def test_diagonal_matrix_no_flops(self):
        n = 8
        ab = np.ones((1, n))
        count, piv, info = gbtrf_opcount(n, n, 0, 0, ab)
        assert count.flops == 0 and info == 0

    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bounds_hold_for_any_matrix(self, n, kl, ku, seed):
        lo, hi = gbtrf_opcount_bounds(n, n, kl, ku)
        ab = random_band(n, kl, ku, seed=seed)
        count, _, _ = gbtrf_opcount(n, n, kl, ku, ab)
        assert lo.flops <= count.flops <= hi.flops
        assert count.comparisons == lo.comparisons == hi.comparisons

    def test_rectangular_bounds(self):
        for m, n in ((10, 20), (20, 10)):
            lo, hi = gbtrf_opcount_bounds(m, n, 2, 3)
            ab = random_band(n, 2, 3, m=m, seed=m)
            count, _, _ = gbtrf_opcount(m, n, 2, 3, ab)
            assert lo.flops <= count.flops <= hi.flops

    def test_batch_spread_demonstrates_paper_caveat(self):
        """Same dimensions, different pivoting, different work (§2)."""
        n, kl, ku = 64, 2, 3
        a = random_band_batch(32, n, kl, ku, seed=2)
        counts, _, info = gbtrf_opcount_batch(n, n, kl, ku, a)
        assert (info == 0).all()
        flops = {c.flops for c in counts}
        assert len(flops) > 5          # genuinely varies across the batch

    def test_gflops_conversion(self):
        c = OpCount(multiplies=500_000, additions=500_000)
        assert gbtrf_gflops(c, 1e-3) == pytest.approx(1.0)
        with pytest.raises(ArgumentError):
            gbtrf_gflops(c, 0.0)

    def test_wider_band_means_more_work(self):
        lo_thin, _ = gbtrf_opcount_bounds(256, 256, 2, 3)
        lo_wide, _ = gbtrf_opcount_bounds(256, 256, 10, 7)
        assert lo_wide.flops > 5 * lo_thin.flops
