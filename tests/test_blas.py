"""Unit tests for the mini-BLAS building blocks."""

import numpy as np
import pytest

from repro.blas import (
    asum,
    axpy,
    dot,
    gemm,
    gemm_batch,
    gemv,
    gemv_batch,
    ger,
    iamax,
    nrm2,
    scal,
    swap,
    trsv,
)
from repro.errors import ArgumentError


class TestIamax:
    def test_basic(self):
        assert iamax(np.array([1.0, -5.0, 3.0])) == 1

    def test_ties_resolve_to_first(self):
        assert iamax(np.array([2.0, -2.0, 2.0])) == 0

    def test_empty(self):
        assert iamax(np.array([])) == 0

    def test_complex_uses_component_norm(self):
        # LAPACK IZAMAX compares |re| + |im|, not the modulus: 3+3j wins
        # over 4+0j even though |4| < |3+3j| either way; pick values where
        # the two orderings differ: |3+3j|_1 = 6 > |4|_1 = 4 but moduli are
        # 4.24 vs 4.0 — and 2.9+2.9j (1-norm 5.8, modulus 4.10) vs 4.1
        # (1-norm 4.1, modulus 4.1): component norm picks index 0.
        x = np.array([2.9 + 2.9j, 4.1 + 0.0j])
        assert iamax(x) == 0

    def test_strided_view(self):
        a = np.arange(12.0).reshape(3, 4)
        assert iamax(a[:, 2]) == 2


class TestLevel1:
    def test_swap_views(self):
        a = np.arange(10.0)
        swap(a[0:3], a[5:8])
        np.testing.assert_array_equal(a[:3], [5, 6, 7])
        np.testing.assert_array_equal(a[5:8], [0, 1, 2])

    def test_scal(self):
        x = np.arange(4.0)
        scal(2.0, x)
        np.testing.assert_array_equal(x, [0, 2, 4, 6])

    def test_axpy(self):
        x, y = np.ones(4), np.arange(4.0)
        axpy(3.0, x, y)
        np.testing.assert_array_equal(y, [3, 4, 5, 6])

    def test_dot_and_dotc(self):
        x = np.array([1 + 1j, 2.0])
        y = np.array([1.0, 1 - 1j])
        assert dot(x, y) == (1 + 1j) + 2 * (1 - 1j)
        assert dot(x, y, conj=True) == (1 - 1j) + 2 * (1 - 1j)

    def test_nrm2(self):
        assert nrm2(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_asum_complex(self):
        assert asum(np.array([3 + 4j])) == pytest.approx(7.0)


class TestLevel2:
    def test_ger(self, rng):
        a = rng.standard_normal((4, 5))
        x, y = rng.standard_normal(4), rng.standard_normal(5)
        expected = a + 2.0 * np.outer(x, y)
        ger(2.0, x, y, a)
        np.testing.assert_allclose(a, expected, atol=1e-14)

    def test_ger_shape_check(self):
        with pytest.raises(ArgumentError):
            ger(1.0, np.ones(3), np.ones(4), np.zeros((4, 4)))

    def test_gemv_variants(self, rng):
        a = rng.standard_normal((5, 5))
        x = rng.standard_normal(5)
        for trans, op in (("N", a), ("T", a.T)):
            y = np.zeros(5)
            gemv(trans, 1.0, a, x, 0.0, y)
            np.testing.assert_allclose(y, op @ x, atol=1e-13)

    def test_gemv_conj(self, rng):
        a = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        x = rng.standard_normal(4) + 0j
        y = np.zeros(4, dtype=complex)
        gemv("C", 1.0, a, x, 0.0, y)
        np.testing.assert_allclose(y, a.conj().T @ x, atol=1e-13)

    @pytest.mark.parametrize("uplo", ["L", "U"])
    @pytest.mark.parametrize("trans", ["N", "T"])
    @pytest.mark.parametrize("diag", ["N", "U"])
    def test_trsv(self, uplo, trans, diag, rng):
        a = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        t = np.tril(a) if uplo == "L" else np.triu(a)
        if diag == "U":
            t_eff = t - np.diag(np.diag(t)) + np.eye(6)
        else:
            t_eff = t
        b = rng.standard_normal(6)
        x = b.copy()
        trsv(uplo, trans, diag, t, x)
        op = t_eff if trans == "N" else t_eff.T
        np.testing.assert_allclose(op @ x, b, atol=1e-12)

    def test_trsv_conj_trans(self, rng):
        a = rng.standard_normal((5, 5)) + 1j * rng.standard_normal((5, 5))
        t = np.tril(a) + 5 * np.eye(5)
        b = rng.standard_normal(5) + 0j
        x = b.copy()
        trsv("L", "C", "N", t, x)
        np.testing.assert_allclose(t.conj().T @ x, b, atol=1e-12)

    def test_trsv_validates(self):
        with pytest.raises(ArgumentError):
            trsv("X", "N", "N", np.eye(3), np.ones(3))
        with pytest.raises(ArgumentError):
            trsv("L", "N", "Q", np.eye(3), np.ones(3))


class TestLevel3:
    def test_gemm(self, rng):
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((6, 3))
        c = np.zeros((4, 3))
        gemm("N", "N", 1.0, a, b, 0.0, c)
        np.testing.assert_allclose(c, a @ b, atol=1e-13)

    def test_gemm_trans_combinations(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((3, 6))
        c = np.zeros((4, 3))
        gemm("T", "T", 2.0, a, b, 0.0, c)
        np.testing.assert_allclose(c, 2.0 * (a.T @ b.T), atol=1e-13)

    def test_gemm_inner_mismatch(self):
        with pytest.raises(ArgumentError):
            gemm("N", "N", 1.0, np.ones((2, 3)), np.ones((4, 2)), 0.0,
                 np.zeros((2, 2)))

    def test_gemm_batch(self, rng):
        a = rng.standard_normal((5, 3, 4))
        b = rng.standard_normal((5, 4, 2))
        c = np.zeros((5, 3, 2))
        gemm_batch("N", "N", 1.0, a, b, 0.0, c)
        np.testing.assert_allclose(c, a @ b, atol=1e-13)

    def test_gemv_batch(self, rng):
        a = rng.standard_normal((5, 3, 4))
        x = rng.standard_normal((5, 4))
        y = np.zeros((5, 3))
        gemv_batch("N", 1.0, a, x, 0.0, y)
        np.testing.assert_allclose(y, np.einsum("bij,bj->bi", a, x),
                                   atol=1e-13)

    def test_gemv_batch_mismatch(self):
        with pytest.raises(ArgumentError):
            gemv_batch("N", 1.0, np.ones((2, 3, 3)), np.ones((3, 3)), 0.0,
                       np.zeros((2, 3)))
