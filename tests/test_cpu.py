"""CPU baseline: LAPACK equivalence, OpenMP-style chunking, cost model."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense
from repro.band.generate import random_band_batch, random_rhs
from repro.core.gbsv import gbsv_batch
from repro.core.gbtrf import gbtrf_batch
from repro.cpu import (
    XEON_6140,
    CpuPool,
    CpuSpec,
    chunk_ranges,
    cpu_gbsv_batch,
    cpu_gbsv_time,
    cpu_gbtrf_batch,
    cpu_gbtrf_time,
    cpu_gbtrs_batch,
    cpu_gbtrs_time,
)
from repro.types import Trans


class TestThreading:
    def test_static_chunks_cover_range(self):
        chunks = list(chunk_ranges(10, 3))
        assert chunks == [(0, 4), (4, 7), (7, 10)]

    def test_more_threads_than_work(self):
        chunks = list(chunk_ranges(2, 8))
        assert chunks == [(0, 1), (1, 2)]

    def test_dynamic_unit_chunks(self):
        assert list(chunk_ranges(3, 2, schedule="dynamic")) == \
            [(0, 1), (1, 2), (2, 3)]

    def test_empty(self):
        assert list(chunk_ranges(0, 4)) == []

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            list(chunk_ranges(4, 2, schedule="guided"))

    def test_parallel_for_runs_all(self):
        seen = []
        CpuPool(4).parallel_for(10, seen.append)
        assert sorted(seen) == list(range(10))

    def test_pool_from_env(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "7")
        assert CpuPool.from_env().num_threads == 7
        monkeypatch.delenv("OMP_NUM_THREADS")
        assert CpuPool.from_env().num_threads == XEON_6140.cores

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            CpuPool(0)


class TestCpuMatchesGpu:
    @pytest.mark.parametrize("n,kl,ku", [(16, 2, 3), (40, 10, 7),
                                         (12, 0, 2)])
    def test_gbtrf_identical(self, n, kl, ku):
        a_cpu = random_band_batch(3, n, kl, ku, seed=n)
        a_gpu = a_cpu.copy()
        piv_c, info_c, _ = cpu_gbtrf_batch(n, n, kl, ku, a_cpu)
        piv_g, info_g = gbtrf_batch(n, n, kl, ku, a_gpu)
        np.testing.assert_allclose(a_cpu, a_gpu, atol=1e-13)
        for p, q in zip(piv_c, piv_g):
            np.testing.assert_array_equal(p, q)
        np.testing.assert_array_equal(info_c, info_g)

    def test_gbsv_identical(self):
        n, kl, ku, nrhs = 24, 2, 3, 2
        a_cpu = random_band_batch(3, n, kl, ku, seed=9)
        b_cpu = random_rhs(n, nrhs, batch=3, seed=10)
        a_gpu, b_gpu = a_cpu.copy(), b_cpu.copy()
        cpu_gbsv_batch(n, kl, ku, nrhs, a_cpu, None, b_cpu)
        gbsv_batch(n, kl, ku, nrhs, a_gpu, None, b_gpu)
        np.testing.assert_allclose(b_cpu, b_gpu, atol=1e-12)

    def test_gbtrs_transposed(self):
        n, kl, ku = 18, 3, 2
        orig = random_band_batch(2, n, kl, ku, seed=11)
        a = orig.copy()
        b = random_rhs(n, 1, batch=2, seed=12)
        piv, info, _ = cpu_gbtrf_batch(n, n, kl, ku, a)
        x = b.copy()
        cpu_gbtrs_batch(Trans.TRANS, n, kl, ku, 1, a, piv, x)
        dense = band_to_dense(orig[0], n, kl, ku)
        np.testing.assert_allclose(dense.T @ x[0], b[0], atol=1e-11)

    def test_pure_python_fallback_when_ldab_nonstandard(self):
        """Oversized ldab bypasses scipy (its wrapper wants exact ldab);
        the pure path must produce the same factors."""
        n, kl, ku = 14, 2, 3
        a_std = random_band_batch(2, n, kl, ku, seed=13)
        a_big = np.zeros((2, 11, n))
        a_big[:, :8, :] = a_std
        a1 = a_std.copy()
        piv1, info1, _ = cpu_gbtrf_batch(n, n, kl, ku, a1)
        piv2, info2, _ = cpu_gbtrf_batch(n, n, kl, ku, a_big)
        np.testing.assert_allclose(a_big[:, :8, :], a1, atol=1e-12)
        for p1, p2 in zip(piv1, piv2):
            np.testing.assert_array_equal(p1, p2)
        np.testing.assert_array_equal(info1, info2)


class TestCostModel:
    def test_linear_in_batch(self):
        t1 = cpu_gbtrf_time(XEON_6140, 128, 128, 2, 3, 500)
        t2 = cpu_gbtrf_time(XEON_6140, 128, 128, 2, 3, 1000)
        overhead = XEON_6140.batch_overhead
        assert (t2 - overhead) == pytest.approx(2 * (t1 - overhead),
                                                rel=1e-9)

    def test_linear_in_n(self):
        t1 = cpu_gbtrf_time(XEON_6140, 256, 256, 2, 3, 1000)
        t2 = cpu_gbtrf_time(XEON_6140, 512, 512, 2, 3, 1000)
        assert 1.8 < t2 / t1 < 2.2

    def test_wider_band_costs_more(self):
        t_thin = cpu_gbtrf_time(XEON_6140, 256, 256, 2, 3, 1000)
        t_wide = cpu_gbtrf_time(XEON_6140, 256, 256, 10, 7, 1000)
        assert t_wide > 2 * t_thin

    def test_more_cores_help(self):
        few = CpuSpec(cores=2)
        many = CpuSpec(cores=18)
        assert cpu_gbtrf_time(few, 256, 256, 2, 3, 1000) > \
            cpu_gbtrf_time(many, 256, 256, 2, 3, 1000)

    def test_rhs_inflation_near_paper(self):
        """Going 1 -> 10 RHS roughly doubles GBSV (paper: 2.18x / 1.93x)."""
        for kl, ku in ((2, 3), (10, 7)):
            r = (cpu_gbsv_time(XEON_6140, 512, kl, ku, 10, 1000)
                 / cpu_gbsv_time(XEON_6140, 512, kl, ku, 1, 1000))
            assert 1.5 < r < 3.2

    def test_gbsv_is_trf_plus_trs(self):
        t = cpu_gbsv_time(XEON_6140, 300, 2, 3, 1, 1000)
        trf = cpu_gbtrf_time(XEON_6140, 300, 300, 2, 3, 1000)
        trs = cpu_gbtrs_time(XEON_6140, 300, 2, 3, 1, 1000)
        overhead = XEON_6140.batch_overhead
        assert t == pytest.approx(trf + trs - overhead, rel=1e-9)

    def test_batch_functions_return_model_time(self):
        n = 16
        a = random_band_batch(2, n, 1, 1, seed=14)
        _, _, t = cpu_gbtrf_batch(n, n, 1, 1, a)
        assert t == cpu_gbtrf_time(XEON_6140, n, n, 1, 1, 2)
