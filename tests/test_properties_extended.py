"""Property-based tests for equilibration, conditioning, and refinement."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.band.convert import band_to_dense
from repro.band.generate import (
    diagonally_dominant_band,
    graded_condition_band,
    random_band,
    random_rhs,
)
from repro.band.ops import band_norm_1
from repro.core import gbcon, gbequ, gbrfs, laqgb
from repro.core.gbtf2 import gbtf2
from repro.core.solve_blocks import gbtrs_unblocked

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

configs = st.tuples(
    st.integers(min_value=2, max_value=32),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=2 ** 31 - 1),
)


@given(configs)
@settings(**SETTINGS)
def test_gbequ_scalings_bound_entries(cfg):
    """Scaled entries are bounded by 1 with the row maxima exactly 1."""
    n, kl, ku, seed = cfg
    ab = random_band(n, kl, ku, seed=seed)
    a = band_to_dense(ab, n, kl, ku)
    r, c, rowcnd, colcnd, amax, info = gbequ(n, n, kl, ku, ab)
    if info != 0:
        return  # a structurally zero row/column: nothing to check
    scaled = np.abs(np.diag(r) @ a @ np.diag(c))
    assert scaled.max() <= 1.0 + 1e-12
    np.testing.assert_allclose(scaled.max(axis=1), 1.0, atol=1e-12)


@given(configs)
@settings(**SETTINGS)
def test_laqgb_equilibrated_solve_matches_original(cfg):
    """Solving the equilibrated system recovers the original solution."""
    n, kl, ku, seed = cfg
    ab = graded_condition_band(n, kl, ku, cond=1e7, seed=seed)
    a = band_to_dense(ab, n, kl, ku)
    b = random_rhs(n, 1, seed=seed + 1)
    r, c, rowcnd, colcnd, _, info = gbequ(n, n, kl, ku, ab)
    if info != 0:
        return
    work = ab.copy()
    equed = laqgb(n, n, kl, ku, work, r, c, rowcnd, colcnd)
    b_s = b.copy()
    if equed in ("R", "B"):
        b_s = r[:, None] * b_s
    piv, fin = gbtf2(n, n, kl, ku, work)
    if fin != 0:
        return
    x = gbtrs_unblocked("N", n, kl, ku, work, piv, b_s.copy())
    if equed in ("C", "B"):
        x = c[:, None] * x
    resid = np.abs(a @ x - b).max()
    scale = np.abs(a).max() * max(np.abs(x).max(), 1.0)
    assert resid <= 1e-9 * scale


@given(configs)
@settings(**SETTINGS)
def test_gbcon_is_upper_bound_within_factor(cfg):
    """rcond estimate bounds the true rcond from above, within ~10x."""
    n, kl, ku, seed = cfg
    ab = diagonally_dominant_band(n, kl, ku, seed=seed)
    a = band_to_dense(ab, n, kl, ku)
    anorm = band_norm_1(ab, n, kl, ku)
    fact = ab.copy()
    piv, info = gbtf2(n, n, kl, ku, fact)
    assert info == 0
    rcond = gbcon("1", n, kl, ku, fact, piv, anorm)
    true = 1.0 / (np.linalg.norm(a, 1)
                  * np.linalg.norm(np.linalg.inv(a), 1))
    assert true <= rcond * (1 + 1e-9)
    assert rcond <= 10 * true + 1e-12


@given(configs)
@settings(**SETTINGS)
def test_gbrfs_monotone_backward_error(cfg):
    """Refinement never leaves the backward error above sqrt(eps)."""
    n, kl, ku, seed = cfg
    ab = random_band(n, kl, ku, seed=seed)
    low = ab.astype(np.float32)
    piv = np.zeros(n, dtype=np.int64)
    _, info = gbtf2(n, n, kl, ku, low, piv)
    if info != 0:
        return
    b = random_rhs(n, 2, seed=seed + 2)
    x = b.astype(np.float32)
    gbtrs_unblocked("N", n, kl, ku, low, piv, x)
    x = x.astype(np.float64)
    if not np.isfinite(x).all():
        return  # fp32 factorization overflowed: out of scope
    a = band_to_dense(ab, n, kl, ku)
    if np.linalg.cond(a, 1) * np.finfo(np.float32).eps >= 0.1:
        # Mixed-precision refinement only contracts when
        # cond(A) * eps_low < 1; beyond that non-convergence is the
        # correct (honestly reported) outcome, not a defect.
        return
    res = gbrfs(n, kl, ku, ab, low, piv, b, x)
    assert res.berr.max() <= np.sqrt(np.finfo(np.float64).eps) * 100 \
        or res.converged
