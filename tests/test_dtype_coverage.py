"""Precision sweep: every driver and design across s/d/c/z.

The core is dtype-generic; these tests pin that claim by running the full
driver matrix in all four LAPACK precisions with precision-appropriate
tolerances, and by checking that outputs preserve dtype (no silent
promotion to float64).
"""

import numpy as np
import pytest

from repro.band.convert import band_to_dense
from repro.band.generate import random_band_batch, random_rhs
from repro.core import gbsv_batch, gbtrf_batch, gbtrs_batch
from repro.core.gbtf2 import gbtf2

DTYPES = [np.float32, np.float64, np.complex64, np.complex128]


def _tol(dtype):
    eps = np.finfo(np.dtype(dtype)).eps
    return 500 * eps


@pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
class TestDtypeSweep:
    def test_gbtrf_all_designs_agree(self, dtype):
        n, kl, ku = 24, 2, 3
        a = random_band_batch(2, n, kl, ku, dtype=dtype, seed=1)
        ref = a.copy()
        for k in range(2):
            gbtf2(n, n, kl, ku, ref[k])
        for method in ("fused", "window", "reference"):
            got = a.copy()
            piv, info = gbtrf_batch(n, n, kl, ku, got, method=method)
            assert got.dtype == np.dtype(dtype)
            np.testing.assert_allclose(got, ref, atol=0)

    def test_gbsv_residual(self, dtype):
        n, kl, ku, nrhs = 20, 2, 3, 2
        a = random_band_batch(3, n, kl, ku, dtype=dtype, seed=2)
        b = random_rhs(n, nrhs, batch=3, dtype=dtype, seed=3)
        orig = a.copy()
        x = b.copy()
        piv, info = gbsv_batch(n, kl, ku, nrhs, a, None, x)
        assert (info == 0).all()
        assert x.dtype == np.dtype(dtype)
        for k in range(3):
            dense = band_to_dense(orig[k], n, kl, ku)
            scale = max(1.0, float(np.abs(dense).max()
                                   * np.abs(x[k]).max()))
            resid = np.abs(dense @ x[k] - b[k]).max() / scale
            assert resid < _tol(dtype)

    def test_gbtrs_trans_residual(self, dtype):
        n, kl, ku = 16, 3, 2
        a = random_band_batch(2, n, kl, ku, dtype=dtype, seed=4)
        orig = a.copy()
        b = random_rhs(n, 1, batch=2, dtype=dtype, seed=5)
        piv, info = gbtrf_batch(n, n, kl, ku, a)
        x = b.copy()
        trans = "C" if np.dtype(dtype).kind == "c" else "T"
        gbtrs_batch(trans, n, kl, ku, 1, a, piv, x)
        dense = band_to_dense(orig[0], n, kl, ku)
        op = dense.conj().T if trans == "C" else dense.T
        scale = max(1.0, float(np.abs(op).max() * np.abs(x[0]).max()))
        assert np.abs(op @ x[0] - b[0]).max() / scale < _tol(dtype)

    def test_fused_gbsv_matches_standard(self, dtype):
        n, kl, ku = 32, 1, 2
        a = random_band_batch(2, n, kl, ku, dtype=dtype, seed=6)
        b = random_rhs(n, 1, batch=2, dtype=dtype, seed=7)
        a1, b1 = a.copy(), b.copy()
        a2, b2 = a.copy(), b.copy()
        gbsv_batch(n, kl, ku, 1, a1, None, b1, method="fused")
        gbsv_batch(n, kl, ku, 1, a2, None, b2, method="standard")
        np.testing.assert_allclose(b1, b2, atol=_tol(dtype))

    def test_pivot_sequences_match_scipy(self, dtype):
        from scipy.linalg import lapack
        prefix = {"float32": "s", "float64": "d",
                  "complex64": "c", "complex128": "z"}[np.dtype(dtype).name]
        fn = getattr(lapack, prefix + "gbtrf")
        n, kl, ku = 18, 2, 3
        a = random_band_batch(1, n, kl, ku, dtype=dtype, seed=8)
        lu_ref, piv_ref, info_ref = fn(np.asfortranarray(a[0]), kl, ku,
                                       m=n, n=n)
        piv, info = gbtrf_batch(n, n, kl, ku, a)
        np.testing.assert_array_equal(piv[0], np.asarray(piv_ref))
        assert info[0] == info_ref


class TestMixedDtypeRejection:
    def test_pointer_array_rejects_mixed(self):
        from repro.gpusim import PointerArray
        from repro.errors import DeviceError
        with pytest.raises(DeviceError):
            PointerArray([np.zeros((4, 4)),
                          np.zeros((4, 4), dtype=np.float32)])

    def test_wrapper_enforces_precision(self):
        from repro.core import cgbtrf_batch
        from repro.errors import ArgumentError
        from repro.gpusim import H100_PCIE, Stream
        a = random_band_batch(1, 8, 1, 1, dtype=np.complex128, seed=9)
        with pytest.raises(ArgumentError, match="dtype"):
            cgbtrf_batch(8, 8, 1, 1, list(a), 4, None, None, 1,
                         Stream(H100_PCIE))
