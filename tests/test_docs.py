"""The markdown docs' code samples must run (tools/check_docs.py).

CI runs the checker as a dedicated step; this test keeps the same
guarantee inside the plain pytest suite, so a doc sample cannot rot
between CI configurations.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _env():
    """Make sure the subprocess can import repro even when the suite runs
    without an installed package (PYTHONPATH=src invocation)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p)
    return env


def test_doc_code_samples_run():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True, text=True, cwd=REPO, timeout=560, env=_env())
    assert proc.returncode == 0, (
        f"doc samples failed:\n{proc.stdout}\n{proc.stderr}")
    assert "checked" in proc.stdout


def test_checker_catches_a_broken_sample(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("```python\nraise RuntimeError('broken sample')\n```\n")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py"), str(bad)],
        capture_output=True, text=True, cwd=REPO, timeout=60)
    assert proc.returncode != 0
    assert "broken sample" in proc.stdout


def test_checker_skips_no_run_fences(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "```python no-run\nthis is: not python(\n```\n"
        "```python\n>>> 1 + 1\n2\n```\n")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py"), str(doc)],
        capture_output=True, text=True, cwd=REPO, timeout=60)
    assert proc.returncode == 0
    assert "1 block(s) checked" in proc.stdout


def _freshness(root):
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py"),
         "--freshness", str(root)],
        capture_output=True, text=True, cwd=REPO, timeout=60)


def test_repo_has_no_unregistered_doctested_files():
    """Every doctested markdown file in this repo is in the checked set."""
    proc = _freshness(REPO)
    assert proc.returncode == 0, proc.stdout
    assert "none carry runnable python fences" in proc.stdout


def test_freshness_flags_an_unregistered_doctested_file(tmp_path):
    (tmp_path / "README.md").write_text("# readme\n")
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "GUIDE.md").write_text(
        "```python\n>>> 1 + 1\n2\n```\n")          # registered: fine
    (tmp_path / "NOTES.md").write_text(
        "```python\nprint('never runs in CI')\n```\n")
    proc = _freshness(tmp_path)
    assert proc.returncode != 0
    assert "unregistered doctested file: NOTES.md" in proc.stdout


def test_freshness_ignores_no_run_and_exempt_files(tmp_path):
    (tmp_path / "README.md").write_text("# readme\n")
    (tmp_path / "NOTES.md").write_text(
        "```python no-run\npseudo_signature(...)\n```\n")
    (tmp_path / "SNIPPETS.md").write_text(
        "```python\nexemplar code, not an example\n```\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "SKILL.md").write_text(
        "```python\nraise SystemExit\n```\n")
    proc = _freshness(tmp_path)
    assert proc.returncode == 0
    assert "none carry runnable python fences" in proc.stdout
