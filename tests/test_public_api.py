"""Public-API hygiene: exports resolve, __all__ is honest, version set."""

import importlib

import pytest

import repro

SUBPACKAGES = ["repro.band", "repro.blas", "repro.core", "repro.cpu",
               "repro.gpusim", "repro.tuning", "repro.apps", "repro.bench"]


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("modname", ["repro"] + SUBPACKAGES)
def test_all_exports_resolve(modname):
    mod = importlib.import_module(modname)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert hasattr(mod, name), f"{modname}.__all__ lists missing {name}"


@pytest.mark.parametrize("modname", ["repro"] + SUBPACKAGES)
def test_all_is_sorted_unique(modname):
    mod = importlib.import_module(modname)
    names = list(mod.__all__)
    assert len(names) == len(set(names)), f"{modname}.__all__ has duplicates"


def test_top_level_surface():
    """The README's quick-start names must exist at the top level."""
    for name in ("gbtrf", "gbtrs", "gbsv", "gbtrf_batch", "gbtrs_batch",
                 "gbsv_batch", "random_band_batch", "random_rhs",
                 "dense_to_band", "band_to_dense", "Stream", "H100_PCIE",
                 "MI250X_GCD", "solve_residual", "Trans"):
        assert hasattr(repro, name), name


def test_paper_signatures_in_core():
    from repro import core
    for prefix in "sdcz":
        for routine in ("gbtrf", "gbtrs", "gbsv"):
            assert hasattr(core, f"{prefix}{routine}_batch")


def test_every_public_callable_has_a_docstring():
    import inspect
    missing = []
    for modname in ["repro"] + SUBPACKAGES:
        mod = importlib.import_module(modname)
        for name in mod.__all__:
            obj = getattr(mod, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                missing.append(f"{modname}.{name}")
    assert not missing, f"public callables without docstrings: {missing}"
