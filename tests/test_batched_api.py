"""The paper-signature batched API (Section 4) and argument validation."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense
from repro.band.generate import random_band, random_band_batch, random_rhs
from repro.core.batched import (
    dgbsv_batch,
    dgbtrf_batch,
    dgbtrs_batch,
    sgbtrf_batch,
    zgbsv_batch,
)
from repro.core.gbtrf import gbtrf_batch
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, MI250X_GCD, PointerArray, Stream


@pytest.fixture
def stream():
    return Stream(H100_PCIE)


def _batch(n=16, kl=2, ku=3, batch=4, nrhs=1, dtype=np.float64, seed=0):
    a = random_band_batch(batch, n, kl, ku, dtype=dtype, seed=seed)
    b = random_rhs(n, nrhs, batch=batch, dtype=dtype, seed=seed + 1)
    return list(a), [x for x in b]


class TestPaperSignatures:
    def test_dgbtrf_batch(self, stream):
        n, kl, ku, batch = 16, 2, 3, 4
        mats, _ = _batch(n, kl, ku, batch)
        originals = [m.copy() for m in mats]
        pivots, info = dgbtrf_batch(n, n, kl, ku, mats, 2 * kl + ku + 1,
                                    None, None, batch, stream)
        assert (info == 0).all()
        assert len(pivots) == batch
        # Factors written in place through the pointer array.
        assert not any(np.array_equal(m, o)
                       for m, o in zip(mats, originals))

    def test_dgbtrs_batch(self, stream):
        n, kl, ku, batch, nrhs = 16, 2, 3, 4, 2
        mats, rhs = _batch(n, kl, ku, batch, nrhs)
        originals = [m.copy() for m in mats]
        b_orig = [b.copy() for b in rhs]
        pivots, info = dgbtrf_batch(n, n, kl, ku, mats, 8, None, None,
                                    batch, stream)
        info2 = dgbtrs_batch("N", n, kl, ku, nrhs, mats, 8, pivots, rhs,
                             n, None, batch, stream)
        assert (info2 == 0).all()
        for k in range(batch):
            dense = band_to_dense(originals[k], n, kl, ku)
            np.testing.assert_allclose(dense @ rhs[k], b_orig[k],
                                       atol=1e-11)

    def test_dgbsv_batch(self, stream):
        n, kl, ku, batch = 16, 2, 3, 4
        mats, rhs = _batch(n, kl, ku, batch)
        originals = [m.copy() for m in mats]
        b_orig = [b.copy() for b in rhs]
        pivots, info = dgbsv_batch(n, kl, ku, 1, mats, 8, None, rhs, n,
                                   None, batch, stream)
        assert (info == 0).all()
        for k in range(batch):
            dense = band_to_dense(originals[k], n, kl, ku)
            np.testing.assert_allclose(dense @ rhs[k], b_orig[k],
                                       atol=1e-11)

    def test_stream_mandatory(self):
        mats, rhs = _batch()
        with pytest.raises(ArgumentError, match="Stream"):
            dgbtrf_batch(16, 16, 2, 3, mats, 8, None, None, 4, None)

    def test_stream_selects_device(self):
        mats1, _ = _batch(seed=5)
        mats2, _ = _batch(seed=5)
        s1, s2 = Stream(H100_PCIE), Stream(MI250X_GCD)
        dgbtrf_batch(16, 16, 2, 3, mats1, 8, None, None, 4, s1)
        dgbtrf_batch(16, 16, 2, 3, mats2, 8, None, None, 4, s2)
        for m1, m2 in zip(mats1, mats2):
            np.testing.assert_allclose(m1, m2, atol=0)
        assert s1.elapsed != s2.elapsed     # different device models

    def test_lda_validated(self, stream):
        mats, _ = _batch()
        with pytest.raises(ArgumentError, match="lda"):
            dgbtrf_batch(16, 16, 2, 3, mats, 7, None, None, 4, stream)

    def test_ldb_validated(self, stream):
        mats, rhs = _batch()
        piv, _ = dgbtrf_batch(16, 16, 2, 3, mats, 8, None, None, 4, stream)
        with pytest.raises(ArgumentError, match="ldb"):
            dgbtrs_batch("N", 16, 2, 3, 1, mats, 8, piv, rhs, 15, None,
                         4, stream)

    def test_dtype_enforced(self, stream):
        mats, _ = _batch(dtype=np.float32)
        with pytest.raises(ArgumentError, match="dtype"):
            dgbtrf_batch(16, 16, 2, 3, mats, 8, None, None, 4, stream)
        # The s-variant accepts them.
        pivots, info = sgbtrf_batch(16, 16, 2, 3, mats, 8, None, None, 4,
                                    stream)
        assert (info == 0).all()

    def test_complex_variant(self, stream):
        n, kl, ku, batch = 12, 2, 1, 3
        mats, rhs = _batch(n, kl, ku, batch, dtype=np.complex128)
        originals = [m.copy() for m in mats]
        b_orig = [b.copy() for b in rhs]
        pivots, info = zgbsv_batch(n, kl, ku, 1, mats, 6, None, rhs, n,
                                   None, batch, stream)
        assert (info == 0).all()
        for k in range(batch):
            dense = band_to_dense(originals[k], n, kl, ku)
            np.testing.assert_allclose(dense @ rhs[k], b_orig[k],
                                       atol=1e-10)


class TestArgumentValidation:
    def test_negative_dims(self):
        a = random_band_batch(1, 8, 1, 1, seed=0)
        for args in [(-1, 8, 1, 1), (8, -1, 1, 1), (8, 8, -1, 1),
                     (8, 8, 1, -1)]:
            with pytest.raises(ArgumentError):
                gbtrf_batch(*args, a)

    def test_ldab_too_small(self):
        a = [np.zeros((5, 8))]       # needs 2*1+1+1 = 4 rows? no: kl=2 -> 8
        with pytest.raises(ArgumentError):
            gbtrf_batch(8, 8, 2, 3, a, batch=1)

    def test_wrong_n(self):
        a = [np.zeros((8, 9))]
        with pytest.raises(ArgumentError):
            gbtrf_batch(8, 8, 2, 3, a, batch=1)

    def test_batch_mismatch(self):
        a = random_band_batch(3, 8, 1, 1, seed=0)
        with pytest.raises(ArgumentError):
            gbtrf_batch(8, 8, 1, 1, a, batch=4)

    def test_pivot_stack_shape(self):
        a = random_band_batch(2, 8, 1, 1, seed=0)
        with pytest.raises(ArgumentError):
            gbtrf_batch(8, 8, 1, 1, a, pv_array=np.zeros((2, 7), dtype=int))

    def test_pivot_dtype(self):
        a = random_band_batch(2, 8, 1, 1, seed=0)
        with pytest.raises(ArgumentError):
            gbtrf_batch(8, 8, 1, 1, a, pv_array=np.zeros((2, 8)))

    def test_info_shape(self):
        a = random_band_batch(2, 8, 1, 1, seed=0)
        with pytest.raises(ArgumentError):
            gbtrf_batch(8, 8, 1, 1, a, info=np.zeros(3, dtype=int))

    def test_argument_positions_in_errors(self):
        try:
            gbtrf_batch(-1, 8, 1, 1, random_band_batch(1, 8, 1, 1, seed=0))
        except ArgumentError as e:
            assert e.position == 1
            assert e.info == -1


class TestPointerArrays:
    def test_scattered_matrices(self):
        """True pointer-array usage: each matrix in unrelated memory."""
        n, kl, ku = 12, 2, 3
        mats = [random_band(n, kl, ku, seed=s) for s in range(4)]
        originals = [m.copy() for m in mats]
        pa = PointerArray(mats)
        piv, info = gbtrf_batch(n, n, kl, ku, pa, batch=4)
        assert (info == 0).all()
        # Compare against strided-batch execution of the same data.
        stack = np.stack(originals)
        gbtrf_batch(n, n, kl, ku, stack)
        for k in range(4):
            np.testing.assert_allclose(mats[k], stack[k], atol=0)

    def test_outputs_into_user_pivot_arrays(self):
        n = 10
        a = random_band_batch(2, n, 1, 1, seed=1)
        user_piv = np.full((2, n), -1, dtype=np.int64)
        piv, info = gbtrf_batch(n, n, 1, 1, a, pv_array=user_piv)
        assert (user_piv >= 0).all()

    def test_user_info_array_reused(self):
        n = 10
        a = random_band_batch(2, n, 1, 1, seed=2)
        user_info = np.full(2, 99, dtype=np.int64)
        piv, info = gbtrf_batch(n, n, 1, 1, a, info=user_info)
        assert info is user_info
        assert (user_info == 0).all()
