"""AMR batch-control layer (paper Section 2.3)."""

import numpy as np
import pytest

from repro.apps import (
    AmrParams,
    build_hierarchy,
    chain_mechanism,
    integrate_batch,
    integrate_hierarchy,
)
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, Stream


class TestParams:
    def test_validation(self):
        with pytest.raises(ArgumentError):
            AmrParams(base_cells=0)
        with pytest.raises(ArgumentError):
            AmrParams(max_levels=0)
        with pytest.raises(ArgumentError):
            AmrParams(refine_ratio=1)
        with pytest.raises(ArgumentError):
            AmrParams(blocking_factor=0)


class TestHierarchy:
    def test_single_level_covers_domain(self):
        hier = build_hierarchy(AmrParams(base_cells=24, max_levels=1), 8)
        assert hier.batch_sizes() == [24]
        lv = hier.levels[0]
        assert lv.centres.shape == (24,)
        assert (0 < lv.centres).all() and (lv.centres < 1).all()
        assert lv.states.shape == (24, 8)

    def test_refinement_increases_total_systems(self):
        coarse = build_hierarchy(AmrParams(base_cells=32, max_levels=1), 8)
        fine = build_hierarchy(AmrParams(base_cells=32, max_levels=2), 8)
        assert fine.total_cells > coarse.total_cells

    def test_lower_threshold_refines_more(self):
        strict = build_hierarchy(
            AmrParams(base_cells=32, max_levels=2, refine_threshold=2.0), 8)
        eager = build_hierarchy(
            AmrParams(base_cells=32, max_levels=2, refine_threshold=0.2), 8)
        fine_strict = strict.levels[-1].cells if len(strict.levels) > 1 else 0
        fine_eager = eager.levels[-1].cells if len(eager.levels) > 1 else 0
        assert fine_eager >= fine_strict

    def test_refine_ratio_scales_fine_cells(self):
        r2 = build_hierarchy(
            AmrParams(base_cells=32, max_levels=2, refine_ratio=2), 8)
        r4 = build_hierarchy(
            AmrParams(base_cells=32, max_levels=2, refine_ratio=4), 8)
        assert r4.levels[-1].cells == 2 * r2.levels[-1].cells

    def test_active_cells_do_not_overlap(self):
        """A coarse cell under refinement must not also be active."""
        hier = build_hierarchy(AmrParams(base_cells=32, max_levels=2), 8)
        coarse, fine = hier.levels
        h = 1.0 / 32
        for c in coarse.centres:
            # No fine centre falls inside an active coarse cell.
            inside = np.abs(fine.centres - c) < h / 2
            assert not inside.any()

    def test_huge_threshold_stops_refinement(self):
        hier = build_hierarchy(
            AmrParams(base_cells=16, max_levels=3, refine_threshold=1e9), 8)
        assert hier.batch_sizes() == [16]

    def test_states_follow_profile(self):
        hier = build_hierarchy(AmrParams(base_cells=64, max_levels=1), 4)
        states = hier.levels[0].states
        assert (states > 0).all()
        # The sharpened front creates genuinely different states.
        assert np.ptp(states[:, 0]) > 0.5


class TestIntegration:
    def test_levels_integrate_and_update_in_place(self):
        mech = chain_mechanism(8, coupling=2, rate_spread=2.0, seed=0)
        hier = build_hierarchy(
            AmrParams(base_cells=16, max_levels=2, refine_threshold=0.8), 8)
        before = [lv.states.copy() for lv in hier.levels]
        stream = Stream(H100_PCIE)
        stats = integrate_hierarchy(hier, mech, 2e-3, dt=1e-3,
                                    device=H100_PCIE, stream=stream)
        for lv, prev in zip(hier.levels, before):
            if lv.cells:
                assert not np.allclose(lv.states, prev)
                assert lv.level in stats
                assert stats[lv.level].converged
        assert stream.launch_count() > 0

    def test_matches_flat_integration(self):
        """Per-level batching is just batching: same states as one batch."""
        mech = chain_mechanism(8, coupling=2, rate_spread=2.0, seed=1)
        hier = build_hierarchy(
            AmrParams(base_cells=16, max_levels=2, refine_threshold=0.8), 8)
        all_states = np.concatenate([lv.states.copy()
                                     for lv in hier.levels if lv.cells])
        integrate_hierarchy(hier, mech, 2e-3, dt=1e-3)
        flat = integrate_batch(mech, all_states, 2e-3, dt=1e-3).y
        got = np.concatenate([lv.states for lv in hier.levels if lv.cells])
        np.testing.assert_allclose(got, flat, atol=1e-12)

    def test_empty_levels_skipped(self):
        mech = chain_mechanism(8, coupling=2, seed=2)
        hier = build_hierarchy(
            AmrParams(base_cells=16, max_levels=2, refine_threshold=0.0), 8)
        # threshold 0 refines everything: level 0 has no active cells.
        assert hier.levels[0].cells == 0
        stats = integrate_hierarchy(hier, mech, 1e-3, dt=1e-3)
        assert 0 not in stats
