"""Application workloads: chemistry, PELE, XGC, ReactEval."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    Mechanism,
    Reaction,
    chain_mechanism,
    integrate_batch,
    jacobian,
    pele_batch,
    q3_collision_matrix,
    rate,
    sinusoidal_states,
    xgc_batch,
)
from repro.band.convert import band_to_dense, bandwidth_of_dense
from repro.core.gbsv import gbsv_batch
from repro.errors import ArgumentError


class TestChemistry:
    def test_chain_mechanism_bandwidth(self):
        for coupling in (1, 2, 3):
            mech = chain_mechanism(12, coupling=coupling, seed=0)
            kl, ku = mech.bandwidth()
            assert kl <= coupling and ku <= coupling
            assert max(kl, ku) == coupling

    def test_mass_conservation_of_pure_transfers(self):
        """A -> B reactions conserve total mass in the rate law."""
        mech = Mechanism(n_species=3, reactions=(
            Reaction(reactants=((0, 1),), products=((1, 1),),
                     rate_constant=2.0),
            Reaction(reactants=((1, 1),), products=((2, 1),),
                     rate_constant=3.0),
        ))
        y = np.array([1.0, 2.0, 3.0])
        assert rate(mech, y).sum() == pytest.approx(0.0)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_jacobian_matches_finite_differences(self, seed):
        rng = np.random.default_rng(seed)
        mech = chain_mechanism(8, coupling=2, rate_spread=2.0, seed=rng)
        y = rng.uniform(0.1, 1.0, 8)
        jac = jacobian(mech, y)
        eps = 1e-7
        for j in range(8):
            dy = np.zeros(8)
            dy[j] = eps
            fd = (rate(mech, y + dy) - rate(mech, y - dy)) / (2 * eps)
            np.testing.assert_allclose(jac[:, j], fd, atol=1e-5, rtol=1e-4)

    def test_jacobian_sparsity_within_mechanism_bandwidth(self):
        mech = chain_mechanism(16, coupling=3, seed=1)
        kl, ku = mech.bandwidth()
        y = np.random.default_rng(2).uniform(0.1, 1.0, 16)
        jkl, jku = bandwidth_of_dense(jacobian(mech, y))
        assert jkl <= kl and jku <= ku

    def test_minimum_species(self):
        with pytest.raises(ArgumentError):
            chain_mechanism(1)


class TestPele:
    def test_batch_characteristics(self):
        pb = pele_batch(8, n_species=54, coupling=3, seed=0)
        assert pb.batch == 8
        assert pb.n == 54
        assert pb.kl == pb.ku == 3
        assert pb.a_band.shape == (8, 2 * 3 + 3 + 1, 54)

    def test_members_differ(self):
        pb = pele_batch(4, n_species=20, seed=1)
        assert not np.array_equal(pb.a_band[0], pb.a_band[1])

    def test_systems_solvable_with_small_h(self):
        pb = pele_batch(6, n_species=30, h=1e-5, seed=2)
        a, b = pb.a_band.copy(), pb.b.copy()
        piv, info = gbsv_batch(pb.n, pb.kl, pb.ku, 1, a, None, b)
        assert (info == 0).all()
        dense = band_to_dense(pb.a_band[0], pb.n, pb.kl, pb.ku)
        np.testing.assert_allclose(dense @ b[0], pb.b[0], atol=1e-9)

    def test_conditioning_scales_with_time_step(self):
        """Larger implicit steps make I - h J much harder conditioned —
        the wide condition range of the paper's Section 2.1."""
        conds = {}
        for h in (1e-5, 5e-2):
            pb = pele_batch(8, n_species=24, h=h, rate_spread=8.0, seed=3)
            conds[h] = max(
                np.linalg.cond(band_to_dense(ab, pb.n, pb.kl, pb.ku))
                for ab in pb.a_band)
        assert conds[5e-2] > 50 * conds[1e-5]
        # And the states themselves spread conditioning within one batch.
        pb = pele_batch(8, n_species=24, h=5e-2, rate_spread=8.0, seed=3)
        batch_conds = [np.linalg.cond(band_to_dense(ab, pb.n, pb.kl, pb.ku))
                       for ab in pb.a_band]
        assert max(batch_conds) / min(batch_conds) > 1.5


class TestXgc:
    def test_paper_dimensions(self):
        """512 systems of order 193 (Section 2.2)."""
        xb = xgc_batch(batch=4, n_elements=64, seed=0)
        assert xb.n == 193
        assert xb.kl == xb.ku == 3

    def test_q3_matrix_bandwidth(self):
        a = q3_collision_matrix(8)
        kl, ku = bandwidth_of_dense(a, tol=1e-14)
        assert kl == 3 and ku == 3

    def test_mass_matrix_positive_definite_at_dt0(self):
        a = q3_collision_matrix(6, dt=0.0)
        np.testing.assert_allclose(a, a.T, atol=1e-14)   # pure mass matrix
        assert (np.linalg.eigvalsh(a) > 0).all()

    def test_drag_term_breaks_symmetry(self):
        a = q3_collision_matrix(6, dt=0.5, drag=2.0)
        assert not np.allclose(a, a.T)

    def test_systems_solvable(self):
        xb = xgc_batch(batch=3, n_elements=16, seed=1)
        a, b = xb.a_band.copy(), xb.b.copy()
        piv, info = gbsv_batch(xb.n, xb.kl, xb.ku, 1, a, None, b)
        assert (info == 0).all()
        dense = band_to_dense(xb.a_band[0], xb.n, xb.kl, xb.ku)
        np.testing.assert_allclose(dense @ b[0], xb.b[0], atol=1e-9)


class TestReactEval:
    def _small(self, seed=0):
        mech = chain_mechanism(8, coupling=2, rate_spread=2.0, seed=seed)
        y0 = sinusoidal_states(4, 8)
        return mech, y0

    def test_sinusoidal_states_positive(self):
        y0 = sinusoidal_states(8, 16)
        assert (y0 > 0).all()
        assert y0.shape == (8, 16)
        # Distinct phases across the batch.
        assert not np.allclose(y0[0], y0[1])

    def test_amplitude_validated(self):
        with pytest.raises(ArgumentError):
            sinusoidal_states(4, 8, base=0.3, amplitude=0.5)

    def test_backward_euler_converges(self):
        mech, y0 = self._small()
        res = integrate_batch(mech, y0, 4e-3, dt=1e-3)
        assert res.stats.converged
        assert res.stats.steps == 4
        assert res.stats.solver_calls >= 4
        assert np.isfinite(res.y).all()
        assert res.t == pytest.approx(4e-3)

    def test_bdf2_second_order(self):
        """Halving dt must cut BDF2's error ~4x and BEuler's ~2x."""
        mech, y0 = self._small(seed=3)
        t_end = 8e-3
        ref = integrate_batch(mech, y0, t_end, dt=1e-4, method="bdf2").y
        orders = {}
        for method in ("beuler", "bdf2"):
            errs = []
            for dt in (2e-3, 1e-3):
                y = integrate_batch(mech, y0, t_end, dt=dt,
                                    method=method).y
                errs.append(np.abs(y - ref).max())
            orders[method] = np.log2(errs[0] / errs[1])
        assert 0.7 < orders["beuler"] < 1.4
        assert orders["bdf2"] > 1.6

    def test_stats_counters_consistent(self):
        mech, y0 = self._small(seed=4)
        res = integrate_batch(mech, y0, 3e-3, dt=1e-3)
        s = res.stats
        assert s.solver_calls == s.newton_iterations
        assert s.jacobian_evaluations == s.newton_iterations * y0.shape[0]

    def test_equilibrium_is_fixed_point(self):
        """Starting from a steady state, Newton converges immediately."""
        mech = Mechanism(n_species=2, reactions=(
            Reaction(reactants=((0, 1),), products=((1, 1),),
                     rate_constant=1.0),))
        y0 = np.array([[0.0, 1.0]])      # species 0 exhausted: dy/dt = 0
        res = integrate_batch(mech, y0, 2e-3, dt=1e-3)
        np.testing.assert_allclose(res.y, y0, atol=1e-12)
        assert res.stats.newton_iterations == 0   # residual already zero

    def test_invalid_method(self):
        mech, y0 = self._small()
        with pytest.raises(ArgumentError):
            integrate_batch(mech, y0, 1e-3, method="rk4")

    def test_invalid_dt(self):
        mech, y0 = self._small()
        with pytest.raises(ArgumentError):
            integrate_batch(mech, y0, 1e-3, dt=0.0)

    def test_y0_shape_validated(self):
        mech, _ = self._small()
        with pytest.raises(ArgumentError):
            integrate_batch(mech, np.zeros((4, 5)), 1e-3)

    def test_solver_runs_on_requested_device(self):
        from repro.gpusim import MI250X_GCD, Stream
        mech, y0 = self._small(seed=5)
        stream = Stream(MI250X_GCD)
        res = integrate_batch(mech, y0, 2e-3, dt=1e-3, device=MI250X_GCD,
                              stream=stream)
        assert res.stats.converged
        assert stream.launch_count() >= res.stats.solver_calls
