"""Pipelined executor: overlap/sharding gains and degenerate-path overhead.

Guards the three contracts of ``core/pipeline.py`` (docs/PERFORMANCE.md
"Overlap and multi-device"):

* **>= 1.5x modeled-makespan improvement at 2 devices** for a chunked
  paper-scale ``gbsv_batch`` workload — the shards run concurrently and
  double-buffer their staging, so the makespan (per-stream tail maximum)
  must beat the sequential executor's transfer+compute sum by at least
  the sharding factor discounted by the pipeline fill/drain;
* **< 5% host wall-clock overhead at 1 device / 1 stream** — the
  degenerate pipeline (no overlap, no sharding) runs the exact same
  chunk protocol as the sequential executor and must cost bookkeeping
  only;
* **bit-identity** — every pipelined configuration must reproduce the
  sequential chunked results exactly.

Host wall-clock for the 2-device configuration is measured and reported
too: each shard runs on its own worker thread, so on a multi-core host
the NumPy-heavy vectorized path can overlap between shards.  The
speedup is gated only when the machine has more than one core (on a
single-core container threads cannot help and the honest number is
~1.0x); the committed JSON records ``cpu_count`` alongside the ratio so
the trajectory stays interpretable.

Alongside the text exhibit, ``benchmarks/results/BENCH_pipeline.json``
archives every number machine-readably for future perf tracking.

Runnable standalone (``python benchmarks/bench_pipeline.py [--quick]``)
for the CI pipeline job; ``--quick`` shrinks the workload and checks
bit-identity plus the modeled-makespan gate only (wall-clock ratios at
small scale are noise).
"""

import json
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import gbsv_batch
from repro.core.pipeline import last_pipeline_result
from repro.band.generate import random_band_batch, random_rhs
from repro.gpusim import H100_PCIE, Stream
from repro.gpusim.memory import reset_memory_pools

from _util import RESULTS_DIR, emit, run_once

N, KL, KU, NRHS, BATCH, CHUNK = 256, 8, 8, 1, 1000, 125

MAKESPAN_FLOOR = 1.5        # modeled speedup at devices=2
OVERHEAD_CEILING = 1.05     # wall-clock, pipelined 1-dev/1-stream vs seq


def _run(a0, b0, n, kl, ku, batch, **kw):
    """One governed call on fresh copies; returns (wall_s, outputs)."""
    a, b = a0.copy(), b0.copy()
    reset_memory_pools()
    t0 = perf_counter()
    piv, info = gbsv_batch(n, kl, ku, NRHS, a, None, b, batch=batch,
                           chunk_hint=CHUNK, **kw)
    dt = perf_counter() - t0
    assert (np.asarray(info) == 0).all()
    return dt, (a, b, np.asarray(piv))


def measure(*, n=N, kl=KL, ku=KU, batch=BATCH, repeats=3):
    """Modeled makespans, wall-clocks and outputs for every configuration.

    The wall-clock contenders are interleaved within each repeat and
    taken best-of-``repeats`` so allocator warm-up and scheduler noise
    land on every side equally (same protocol as
    ``bench_memory_governance.py``).
    """
    a0 = random_band_batch(batch, n, kl, ku, seed=21)
    b0 = random_rhs(n, NRHS, batch=batch, seed=22)

    stream = Stream(H100_PCIE)
    configs = {
        "sequential": dict(stream=stream),
        "pipe-1dev-1stream": dict(devices=1, overlap=False),
        "overlap": dict(streams=3),
        "2dev": dict(devices=2),
    }
    _run(a0, b0, n, kl, ku, batch, **configs["2dev"])   # warmup
    wall, outputs, modeled = {}, {}, {}
    for _ in range(max(1, repeats)):
        for label, kw in configs.items():
            stream.reset()
            dt, out = _run(a0, b0, n, kl, ku, batch, **kw)
            wall[label] = min(wall.get(label, dt), dt)
            outputs[label] = out
            if label == "sequential":
                modeled[label] = stream.synchronize()
            else:
                modeled[label] = last_pipeline_result().makespan
    return wall, modeled, outputs


def _check_bit_identity(outputs):
    ref = outputs["sequential"]
    for label, out in outputs.items():
        for part, name in zip(range(3), ("factors", "solution", "pivots")):
            assert out[part].tobytes() == ref[part].tobytes(), (
                f"pipelined config {label!r} changed {name}")


def _summary(wall, modeled, *, n, batch):
    cpu = os.cpu_count() or 1
    return {
        "workload": {"op": "gbsv", "n": n, "kl": KL, "ku": KU,
                     "nrhs": NRHS, "batch": batch, "chunk": CHUNK,
                     "dtype": "float64", "device": H100_PCIE.name},
        "cpu_count": cpu,
        "modeled_ms": {k: v * 1e3 for k, v in modeled.items()},
        "wallclock_s": dict(wall),
        "modeled_speedup": {
            "overlap": modeled["sequential"] / modeled["overlap"],
            "2dev": modeled["sequential"] / modeled["2dev"],
        },
        "wallclock_speedup_2dev": wall["sequential"] / wall["2dev"],
        "overhead_1dev_1stream":
            wall["pipe-1dev-1stream"] / wall["sequential"] - 1.0,
        "gates": {"modeled_2dev_floor": MAKESPAN_FLOOR,
                  "overhead_ceiling": round(OVERHEAD_CEILING - 1.0, 9),
                  "wallclock_gated": cpu > 1},
    }


def _render(s):
    w = s["workload"]
    lines = [
        "Pipelined executor: modeled makespan and host wall-clock "
        f"(gbsv_batch, batch={w['batch']}, n={w['n']}, "
        f"kl=ku={w['kl']}, chunks of {w['chunk']}, fp64)",
        "",
        "  config               modeled     wall-clock",
    ]
    for label in ("sequential", "pipe-1dev-1stream", "overlap", "2dev"):
        lines.append(f"  {label:<18} {s['modeled_ms'][label]:8.3f} ms "
                     f"{s['wallclock_s'][label]:9.3f} s")
    lines += [
        "",
        f"  modeled speedup, overlap (3 streams): "
        f"{s['modeled_speedup']['overlap']:.2f}x",
        f"  modeled speedup, 2 devices:           "
        f"{s['modeled_speedup']['2dev']:.2f}x   (floor "
        f"{s['gates']['modeled_2dev_floor']:.1f}x)",
        f"  pipeline overhead at 1 dev/1 stream:  "
        f"{s['overhead_1dev_1stream'] * 100:+.1f} %   (ceiling "
        f"{s['gates']['overhead_ceiling'] * 100:.0f}%)",
        f"  wall-clock speedup, 2 worker threads: "
        f"{s['wallclock_speedup_2dev']:.2f}x   "
        + (f"({s['cpu_count']} cores)" if s["gates"]["wallclock_gated"]
           else f"(single-core host: not gated)"),
    ]
    return "\n".join(lines)


def _emit_json(s):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_pipeline.json"
    path.write_text(json.dumps(s, indent=2, sort_keys=True) + "\n")


def _assert_gates(s, *, wallclock=True):
    assert s["modeled_speedup"]["2dev"] >= MAKESPAN_FLOOR, (
        f"2-device modeled makespan speedup "
        f"{s['modeled_speedup']['2dev']:.2f}x below the "
        f"{MAKESPAN_FLOOR}x floor")
    assert s["modeled_speedup"]["overlap"] > 1.0, (
        "overlapped staging did not beat the sequential makespan")
    if wallclock:
        assert s["overhead_1dev_1stream"] <= OVERHEAD_CEILING - 1.0, (
            f"degenerate pipeline {s['overhead_1dev_1stream'] * 100:.1f}% "
            f"slower than the sequential executor")
        if s["gates"]["wallclock_gated"]:
            assert s["wallclock_speedup_2dev"] > 1.0, (
                f"2 worker threads on {s['cpu_count']} cores gave "
                f"{s['wallclock_speedup_2dev']:.2f}x wall-clock")


def test_pipeline_speedup(benchmark):
    wall, modeled, outputs = run_once(benchmark, measure)
    _check_bit_identity(outputs)
    s = _summary(wall, modeled, n=N, batch=BATCH)
    emit("pipeline", _render(s))
    _emit_json(s)
    _assert_gates(s)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        wall, modeled, outputs = measure(n=96, batch=128, repeats=1)
        _check_bit_identity(outputs)
        s = _summary(wall, modeled, n=96, batch=128)
        print(_render(s))
        _assert_gates(s, wallclock=False)
        print("bit-identity and modeled gates OK "
              "(quick mode: wall-clock not asserted)")
    else:
        wall, modeled, outputs = measure()
        _check_bit_identity(outputs)
        s = _summary(wall, modeled, n=N, batch=BATCH)
        emit("pipeline", _render(s))
        _emit_json(s)
        _assert_gates(s)
