"""Figure 9: final GBSV execution time, ten right-hand sides.

Paper: going from 1 to 10 RHS inflates the MKL baseline by ~2.18x (2,3) /
~1.93x (10,7) on average, while the GPUs absorb the extra columns far more
cheaply (H100: +49% / +25%) — the origin of the larger speedups of Table 3.
"""

import math

import numpy as np

from repro.bench import fig8, fig9, format_figure
from repro.band.generate import random_band_batch, random_rhs
from repro.core import gbsv_batch
from repro.band.convert import band_to_dense

from _util import emit, run_once


def _ratio(kl, ku, label):
    one = fig8(kl, ku).series_by_label(label).times
    ten = fig9(kl, ku).series_by_label(label).times
    pairs = [(a, b) for a, b in zip(one, ten)
             if not (math.isnan(a) or math.isnan(b))]
    return float(np.mean([b / a for a, b in pairs]))


def test_fig9_kl2_ku3(benchmark):
    fig = run_once(benchmark, lambda: fig9(2, 3))
    emit("fig9_kl2_ku3", format_figure(fig))
    h100 = fig.series_by_label("H100").times
    cpu = fig.series_by_label("mkl+openmp").times
    assert all(c > t for c, t in zip(cpu, h100))


def test_fig9_kl10_ku7(benchmark):
    fig = run_once(benchmark, lambda: fig9(10, 7))
    emit("fig9_kl10_ku7", format_figure(fig))
    h100 = fig.series_by_label("H100").times
    cpu = fig.series_by_label("mkl+openmp").times
    assert all(c > t for c, t in zip(cpu, h100))


def test_fig9_rhs_inflation_ordering():
    """CPU pays more for the extra RHS columns than the H100 does."""
    for kl, ku in ((2, 3), (10, 7)):
        cpu_ratio = _ratio(kl, ku, "mkl+openmp")
        h100_ratio = _ratio(kl, ku, "H100")
        assert cpu_ratio > h100_ratio, (
            f"(kl,ku)=({kl},{ku}): CPU x{cpu_ratio:.2f} should exceed "
            f"H100 x{h100_ratio:.2f}")
        # Absolute scales near the paper's: CPU roughly doubles.
        assert 1.5 <= cpu_ratio <= 3.0
        # The GPU inflation stays clearly below the 10x column count.
        assert h100_ratio <= 3.0


def test_fig9_functional_sample():
    """Ten-RHS solve is numerically identical to ten one-RHS solves."""
    n, kl, ku, nrhs = 96, 2, 3, 10
    a = random_band_batch(4, n, kl, ku, seed=99)
    b = random_rhs(n, nrhs, batch=4, seed=100)
    a1, b1 = a.copy(), b.copy()
    gbsv_batch(n, kl, ku, nrhs, a1, None, b1)
    for k in range(4):
        dense = band_to_dense(a[k], n, kl, ku)
        assert np.allclose(dense @ b1[k], b[k], atol=1e-10)
