"""Figure 5: the final (dispatched) band LU factorization.

Paper: "The advantage of the sliding window kernel is apparent for larger
sizes, maintaining an advantage over the parallel CPU solution" — unlike
the fused-only Figure 3 curve, the dispatched H100 solution stays ahead of
the CPU across the whole sweep, with no shared-memory failures.
"""

import math

import numpy as np

from repro.bench import fig5, format_figure, time_gbtrf
from repro.core import gbtrf_batch, select_gbtrf_method
from repro.gpusim import H100_PCIE, MI250X_GCD
from repro.band.generate import random_band_batch

from _util import emit, run_once


def test_fig5_kl2_ku3(benchmark):
    fig = run_once(benchmark, lambda: fig5(2, 3))
    emit("fig5_kl2_ku3", format_figure(fig))
    h100 = fig.series_by_label("H100").times
    cpu = fig.series_by_label("mkl+openmp").times
    mi = fig.series_by_label("MI250x").times
    # No failures anywhere: the window kernel's footprint is size-independent.
    assert all(not math.isnan(t) for t in h100 + mi)
    # H100 beats the CPU at every size (Table 1 min speedup 2.13).
    assert all(c / t > 1.5 for c, t in zip(cpu, h100))


def test_fig5_kl10_ku7(benchmark):
    fig = run_once(benchmark, lambda: fig5(10, 7))
    emit("fig5_kl10_ku7", format_figure(fig))
    h100 = fig.series_by_label("H100").times
    mi = fig.series_by_label("MI250x").times
    cpu = fig.series_by_label("mkl+openmp").times
    assert all(not math.isnan(t) for t in h100 + mi)
    # Wide bands hurt the MI250x more than the H100 (its small LDS limits
    # residency): the H100/MI gap grows with the band.
    assert np.mean(np.array(mi) / np.array(h100)) > 1.5
    # The CPU remains "a close competitor" on the MI250x for (10, 7).
    assert min(c / t for c, t in zip(cpu, mi)) < 1.5


def test_fig5_dispatcher_choices():
    """Section 5.4: fused below the cutoff, window above, both correct."""
    assert select_gbtrf_method(H100_PCIE, 48, 48, 2, 3) == "fused"
    assert select_gbtrf_method(H100_PCIE, 512, 512, 2, 3) == "window"
    # Functional spot-check at a dispatch boundary size.
    for n in (64, 65):
        a = random_band_batch(4, n, 2, 3, seed=n)
        a2 = a.copy()
        piv1, info1 = gbtrf_batch(n, n, 2, 3, a, method="auto")
        piv2, info2 = gbtrf_batch(n, n, 2, 3, a2, method="reference")
        assert np.allclose(a, a2)
        assert all(np.array_equal(p, q) for p, q in zip(piv1, piv2))


def test_fig5_beats_fig3_at_large_sizes():
    """The dispatched design must dominate the fused-only design."""
    for dev in (H100_PCIE, MI250X_GCD):
        t_auto = time_gbtrf(dev, 768, 2, 3, method="auto")
        t_fused = time_gbtrf(dev, 768, 2, 3, method="fused")
        assert t_auto < t_fused
