"""Figure 3: the fully fused band LU factorization.

Paper findings reproduced and asserted here:
* staircase-like time growth as shared-memory pressure cuts occupancy;
* the MI250x drops from 2 resident blocks to 1 between N=416 and N=448
  for (kl, ku) = (2, 3), costing ~2x;
* the fused kernel eventually falls behind the CPU and, on the MI250x,
  fails to launch outright at large sizes.
"""

import math

import numpy as np

from repro.band.layout import BandLayout
from repro.bench import PAPER_SIZES, fig3, format_figure
from repro.gpusim import MI250X_GCD, occupancy

from _util import emit, finite, run_once


def _series(fig, label):
    return fig.series_by_label(label).times


def test_fig3_kl2_ku3(benchmark):
    fig = run_once(benchmark, lambda: fig3(2, 3))
    emit("fig3_kl2_ku3", format_figure(fig))
    h100, mi, cpu = (_series(fig, k) for k in ("H100", "MI250x",
                                               "mkl+openmp"))
    sizes = fig.xs

    # MI250x occupancy drop 416 -> 448 costs close to 2x (paper: "the
    # performance drops by almost a factor of 2x ... from 416 to 448").
    i416, i448 = sizes.index(416), sizes.index(448)
    ratio = mi[i448] / mi[i416]
    assert 1.5 <= ratio <= 2.5, f"MI250x staircase ratio {ratio:.2f}"
    occ416 = occupancy(MI250X_GCD, 32,
                       BandLayout(416, 416, 2, 3).fused_elems() * 8)
    occ448 = occupancy(MI250X_GCD, 32,
                       BandLayout(448, 448, 2, 3).fused_elems() * 8)
    assert (occ416.blocks_per_sm, occ448.blocks_per_sm) == (2, 1)

    # The fused kernel ends up slower than the CPU at the largest sizes...
    assert h100[-1] > cpu[-1] * 0.8
    # ...and fails to run on the MI250x (NaN) once a matrix exceeds LDS.
    assert any(math.isnan(t) for t in mi)
    # H100's larger shared memory sustains more sizes than the MI250x.
    assert len(finite(h100)) >= len(finite(mi))


def test_fig3_kl10_ku7(benchmark):
    fig = run_once(benchmark, lambda: fig3(10, 7))
    emit("fig3_kl10_ku7", format_figure(fig))
    mi = _series(fig, "MI250x")
    h100 = _series(fig, "H100")
    # The wide band exhausts the MI250x LDS much earlier.
    assert sum(math.isnan(t) for t in mi) > sum(math.isnan(t) for t in h100)
    # GPU still wins at small sizes.
    cpu = _series(fig, "mkl+openmp")
    assert h100[0] < cpu[0]


def test_fig3_staircase_is_occupancy():
    """Jumps in the fused-kernel curve coincide with occupancy drops."""
    times, occs = [], []
    for n in PAPER_SIZES:
        layout = BandLayout(n, n, 2, 3)
        try:
            occ = occupancy(MI250X_GCD, 32, layout.fused_elems() * 8)
        except Exception:
            break
        occs.append(occ.blocks_per_sm)
        times.append(n)
    drops = [i for i in range(1, len(occs)) if occs[i] < occs[i - 1]]
    assert drops, "expected at least one occupancy drop across the sweep"
    fig = fig3(2, 3, sizes=times)
    mi = fig.series_by_label("MI250x").times
    # Only the occupancy-bound regime shows the full staircase: at tiny
    # sizes the launch-overhead/minimum-kernel-time floor smooths jumps.
    checked = 0
    for i in drops:
        if times[i] < 256:
            continue
        jump = mi[i] / mi[i - 1]
        scale = times[i] / times[i - 1]
        assert jump > scale * 1.2, (
            f"occupancy drop at n={times[i]} should cost more than the "
            f"linear size growth (jump {jump:.2f}, size ratio {scale:.2f})")
        checked += 1
    assert checked >= 1, "no occupancy drop found in the bound regime"
