"""Figure 1: dedicated batch GEMM/GEMV kernels vs 16-stream execution.

Paper: both compute-bound (dgemm) and memory-bound (dgemv) kernels benefit
from dedicated batch designs; the streamed approach loses badly at small
sizes and converges as per-kernel work grows.
"""

import numpy as np

from repro.bench import fig1_gemm, fig1_gemv, format_figure
from repro.gpusim import H100_PCIE, launch
from repro.gpusim.blas_kernels import BatchedGemmKernel, BatchedGemvKernel

from _util import emit, run_once

SIZES = [32, 64, 128, 192, 256, 320, 384, 448, 512, 640, 768, 896, 1024]


def test_fig1_gemm(benchmark):
    fig = run_once(benchmark, lambda: fig1_gemm(SIZES))
    emit("fig1_gemm", format_figure(fig, unit="ratio"))
    sp = fig.series_by_label("speedup").times
    # Shape: big win at the smallest size, monotone-ish decay, convergence.
    assert sp[0] > 5.0
    assert sp[0] > sp[-1]
    assert 0.8 <= sp[-1] <= 2.0


def test_fig1_gemv(benchmark):
    fig = run_once(benchmark, lambda: fig1_gemv(SIZES))
    emit("fig1_gemv", format_figure(fig, unit="ratio"))
    sp = fig.series_by_label("speedup").times
    assert sp[0] > 5.0
    assert sp[0] > sp[-1]
    # Memory-bound GEMV keeps the batch advantage longer than GEMM does.
    gemm_sp = fig1_gemm([256]).series_by_label("speedup").times[0]
    gemv_sp = fig1_gemv([256]).series_by_label("speedup").times[0]
    assert gemv_sp > gemm_sp


def test_fig1_functional_sample():
    """The batch kernels actually compute GEMM/GEMV (not just timings)."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((4, 24, 24))
    b = rng.standard_normal((4, 24, 24))
    c = np.zeros((4, 24, 24))
    launch(H100_PCIE, BatchedGemmKernel(a, b, c))
    assert np.allclose(c, a @ b, atol=1e-12)

    x = rng.standard_normal((4, 24))
    y = np.zeros((4, 24))
    launch(H100_PCIE, BatchedGemvKernel(a, x, y))
    assert np.allclose(y, np.einsum("bij,bj->bi", a, x), atol=1e-12)
