"""Table 2: GBSV speedups vs the CPU baseline, single right-hand side."""

from repro.bench import format_speedup_table, table2

from _util import emit, run_once, within_factor

TOLERANCE = 1.5


def test_table2(benchmark):
    rows = run_once(benchmark, table2)
    emit("table2", format_speedup_table(
        "Table 2: GBSV speedup vs mkl+openmp, 1 RHS (batch 1000, fp64)",
        rows))
    by_label = {r.label: r for r in rows}

    for r in rows:
        assert within_factor(r.avg, r.paper_avg, TOLERANCE), (
            f"{r.label}: avg {r.avg:.2f} vs paper {r.paper_avg:.2f}")

    h23 = by_label["H100 (kl,ku)=(2,3)"]
    h107 = by_label["H100 (kl,ku)=(10,7)"]
    m23 = by_label["MI250x (kl,ku)=(2,3)"]
    m107 = by_label["MI250x (kl,ku)=(10,7)"]

    # H100 above MI250x on both bands ("In most cases, the GPU solution is
    # better ... the CPU remains a close competitor for AMD GPUs").
    assert h23.avg > m23.avg and h107.avg > m107.avg
    # The MI250x nearly ties the CPU somewhere for (10, 7) (paper min 0.92).
    assert m107.min < 1.1
    # The H100 never loses.
    assert min(h23.min, h107.min) > 1.3
