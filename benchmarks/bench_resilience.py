"""Resilient dispatch overhead: ``resilient=True`` with zero faults.

The self-healing driver (``core/resilience.py``) buys its guarantees with
one defensive snapshot of the operands plus a post-run quarantine scan.
This benchmark times a paper-scale ``gbsv_batch`` workload (batch 1000,
n=256, kl=ku=8, fp64) on the plain path versus the resilient path with no
fault plan armed, checks the two produce bit-identical factors/solutions,
and asserts the fault-free overhead stays under 5%.

Runnable standalone (``python benchmarks/bench_resilience.py [--quick]``)
for the CI fault-injection job; ``--quick`` shrinks the workload and only
verifies bit-identity, since timing ratios at small scale are noise.
"""

import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.band.generate import random_band_batch, random_rhs
from repro.core import gbsv_batch

from _util import emit, run_once

N, KL, KU, BATCH, NRHS = 256, 8, 8, 1000, 1

# Acceptance ceiling is 5%; the measured slack is mostly one operand
# snapshot (~50 MB memcpy) against ~0.5 s of factorization work.
CEILING = 1.05


def _run(resilient, a, b, n, kl, ku, batch):
    mats, rhs = a.copy(), b.copy()
    t0 = perf_counter()
    out = gbsv_batch(n, kl, ku, NRHS, mats, None, rhs, batch=batch,
                     resilient=resilient)
    dt = perf_counter() - t0
    if resilient:
        piv, info, report = out
        assert report.ok and report.faults_tolerated == 0
    else:
        piv, info = out
    assert (np.asarray(info) == 0).all()
    return dt, mats, rhs, np.stack(piv)


def measure(*, n=N, kl=KL, ku=KU, batch=BATCH, repeats=2):
    """Best-of-``repeats`` wall-clock for both paths, plus their outputs."""
    a = random_band_batch(batch, n, kl, ku, seed=11)
    b = random_rhs(n, NRHS, batch=batch, seed=12)
    seconds, outputs = {}, {}
    for label, resilient in (("plain", False), ("resilient", True)):
        _run(resilient, a[:min(8, batch)], b[:min(8, batch)],
             n, kl, ku, min(8, batch))            # warmup
        best = None
        for _ in range(max(1, repeats)):
            dt, mats, rhs, piv = _run(resilient, a, b, n, kl, ku, batch)
            best = dt if best is None else min(best, dt)
        seconds[label] = best
        outputs[label] = (mats, rhs, piv)
    return seconds, outputs


def _check_bit_identity(outputs):
    """Zero faults => the resilient path is a pass-through, bit for bit."""
    for part, name in zip(range(3), ("factors", "solution", "pivots")):
        plain = outputs["plain"][part]
        res = outputs["resilient"][part]
        assert plain.tobytes() == res.tobytes(), (
            f"resilient path changed {name} with no faults armed")


def _render(seconds, *, n, batch):
    ratio = seconds["resilient"] / seconds["plain"]
    return ratio, "\n".join([
        "Resilient dispatch overhead, zero faults "
        f"(gbsv_batch, batch={batch}, n={n}, kl=ku={KL}, fp64)",
        f"  plain path:        {seconds['plain']:8.3f} s",
        f"  resilient path:    {seconds['resilient']:8.3f} s",
        f"  overhead:          {(ratio - 1) * 100:8.1f} %   (ceiling 5%)",
    ])


def test_resilient_overhead(benchmark):
    seconds, outputs = run_once(benchmark, measure)
    _check_bit_identity(outputs)
    ratio, text = _render(seconds, n=N, batch=BATCH)
    emit("resilience_overhead", text)
    assert ratio <= CEILING, (
        f"fault-free resilient path {(ratio - 1) * 100:.1f}% slower "
        f"than plain (ceiling {(CEILING - 1) * 100:.0f}%)")


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        seconds, outputs = measure(n=96, batch=64, repeats=1)
        _check_bit_identity(outputs)
        _, text = _render(seconds, n=96, batch=64)
        print(text)
        print("bit-identity OK (quick mode: ratio not asserted)")
    else:
        seconds, outputs = measure()
        _check_bit_identity(outputs)
        ratio, text = _render(seconds, n=N, batch=BATCH)
        emit("resilience_overhead", text)
        if ratio > CEILING:
            sys.exit(f"overhead {(ratio - 1) * 100:.1f}% exceeds ceiling")
