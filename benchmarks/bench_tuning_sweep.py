"""Section 5.3: the offline tuning sweep and its post-processing.

Regenerates (a subsample of) the paper's benchmark sweep — all
``kl, ku in [0:32]`` for square sizes up to 1024 — and verifies that the
extracted per-pattern parameters actually beat naive fixed choices.
"""

import numpy as np

from repro.bench import time_gbtrf
from repro.gpusim import H100_PCIE, MI250X_GCD
from repro.tuning import (
    SweepConfig,
    heuristic_window_params,
    load_shipped_table,
    run_sweep,
    window_params,
)

from _util import emit, run_once


def test_sweep_subsample(benchmark):
    """Sweep a coarse (kl, ku) grid on both devices and render the table."""
    def sweep_all():
        out = {}
        for dev in (H100_PCIE, MI250X_GCD):
            cfg = SweepConfig(device=dev, kl_range=range(0, 33, 4),
                              ku_range=range(0, 33, 4))
            out[dev.name] = run_sweep(cfg)
        return out

    tables = run_once(benchmark, sweep_all)
    lines = ["Section 5.3 tuning sweep (coarse grid), best (nb, threads):"]
    for name, table in tables.items():
        lines.append(f"-- {name} --")
        lines.append(f"{'kl':>4} {'ku':>4} {'nb':>4} {'threads':>8} "
                     f"{'ms@cal':>10}")
        for (kl, ku), e in sorted(table.entries.items()):
            if kl % 8 == 0 and ku % 8 == 0:
                lines.append(f"{kl:>4} {ku:>4} {e.nb:>4} {e.threads:>8} "
                             f"{e.time * 1e3:>10.3f}")
    emit("tuning_sweep", "\n".join(lines))

    for name, table in tables.items():
        # Every swept entry respects the design minimum of kl+1 threads.
        for (kl, ku), e in table.entries.items():
            assert e.threads >= kl + 1
        # Wider bands should generally get more threads (monotone trend
        # along the kl axis at fixed ku, allowing sweep-grid noise).
        t0 = table.entries[(0, 0)].threads
        t32 = table.entries[(32, 32)].threads
        assert t32 >= t0


def test_swept_params_beat_naive_choices():
    """The tuned (nb, threads) outperform a fixed untuned configuration."""
    for dev in (H100_PCIE, MI250X_GCD):
        for kl, ku in ((2, 3), (10, 7), (24, 16)):
            nb, threads = window_params(dev, kl, ku)
            t_tuned = time_gbtrf(dev, 768, kl, ku, method="window",
                                 nb=nb, threads=threads)
            t_naive = time_gbtrf(dev, 768, kl, ku, method="window",
                                 nb=8, threads=kl + 1)
            assert t_tuned <= t_naive * 1.02, (
                f"{dev.name} ({kl},{ku}): tuned {t_tuned:.2e} vs naive "
                f"{t_naive:.2e}")


def test_shipped_tables_cover_paper_range():
    """The repo ships full [0:32]^2 sweeps for both devices."""
    for name in ("h100-pcie", "mi250x-gcd"):
        table = load_shipped_table(name)
        assert table is not None
        assert len(table.entries) == 33 * 33
        # And the runtime lookup uses them.
        dev = H100_PCIE if name == "h100-pcie" else MI250X_GCD
        assert window_params(dev, 2, 3) == table.lookup(2, 3)
