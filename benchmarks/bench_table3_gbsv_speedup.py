"""Table 3: GBSV speedups vs the CPU baseline, ten right-hand sides."""

from repro.bench import format_speedup_table, table2, table3

from _util import emit, run_once, within_factor

TOLERANCE = 1.5


def test_table3(benchmark):
    rows = run_once(benchmark, table3)
    emit("table3", format_speedup_table(
        "Table 3: GBSV speedup vs mkl+openmp, 10 RHS (batch 1000, fp64)",
        rows))
    by_label = {r.label: r for r in rows}

    for r in rows:
        assert within_factor(r.avg, r.paper_avg, TOLERANCE), (
            f"{r.label}: avg {r.avg:.2f} vs paper {r.paper_avg:.2f}")

    h23 = by_label["H100 (kl,ku)=(2,3)"]
    h107 = by_label["H100 (kl,ku)=(10,7)"]
    assert h23.avg > by_label["MI250x (kl,ku)=(2,3)"].avg
    assert h107.avg > by_label["MI250x (kl,ku)=(10,7)"].avg


def test_table3_exceeds_table2_on_h100():
    """More right-hand sides widen the GPU's lead (Tables 2 vs 3).

    Paper: H100 averages rise from 2.54 -> 3.69 for (2,3) and from
    3.03 -> 4.64 for (10,7) when going from 1 to 10 RHS, because the MKL
    baseline inflates ~2x while the GPU absorbs the columns cheaply.
    """
    t2 = {r.label: r for r in table2()}
    t3 = {r.label: r for r in table3()}
    for label in ("H100 (kl,ku)=(2,3)", "H100 (kl,ku)=(10,7)"):
        assert t3[label].avg > t2[label].avg, (
            f"{label}: 10-RHS avg {t3[label].avg:.2f} should exceed "
            f"1-RHS avg {t2[label].avg:.2f}")
