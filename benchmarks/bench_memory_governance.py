"""Memory-governance overhead: planning + pool lease when the batch fits.

Every outermost functional driver call now routes through the memory
governor (``core/memory_plan.py``): a footprint plan against the device
pool, one lease/release pair, and — only when chunking actually happens —
staging transfers.  For a batch that fits comfortably this must be
bookkeeping, not work.  This benchmark times a paper-scale ``gbsv_batch``
workload (batch 1000, n=256, kl=ku=8, fp64) on the governed path versus
the same call with governance suppressed, checks that the two produce
bit-identical factors/solutions, and asserts the overhead stays under 5%.

Runnable standalone (``python benchmarks/bench_memory_governance.py
[--quick]``) for the CI memory-pressure job; ``--quick`` shrinks the
workload and only verifies bit-identity, since timing ratios at small
scale are noise.
"""

import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.band.generate import random_band_batch, random_rhs
from repro.core import gbsv_batch, memory_plan
from repro.gpusim.memory import reset_memory_pools

from _util import emit, run_once

N, KL, KU, BATCH, NRHS = 256, 8, 8, 1000, 1

# Acceptance ceiling is 5%; the measured slack is one footprint plan and
# one pool lease against ~0.5 s of factorization work (no staging — a
# fitting batch runs as a single chunk, so no transfers are modeled).
CEILING = 1.05


def _run(governed, a, b, n, kl, ku, batch):
    mats, rhs = a.copy(), b.copy()
    reset_memory_pools()
    t0 = perf_counter()
    if governed:
        piv, info = gbsv_batch(n, kl, ku, NRHS, mats, None, rhs,
                               batch=batch)
    else:
        with memory_plan._suppress_governance():
            piv, info = gbsv_batch(n, kl, ku, NRHS, mats, None, rhs,
                                   batch=batch)
    dt = perf_counter() - t0
    assert (np.asarray(info) == 0).all()
    return dt, mats, rhs, np.stack(piv)


def measure(*, n=N, kl=KL, ku=KU, batch=BATCH, repeats=5):
    """Best-of-``repeats`` wall-clock for both paths, plus their outputs.

    The two paths are interleaved within each repeat (rather than timed
    back to back) so allocator and page-cache warm-up costs land on both
    sides equally — the first full-size run of a process is measurably
    slower regardless of which path it takes — and best-of-``repeats``
    damps scheduler noise on loaded CI machines.
    """
    a = random_band_batch(batch, n, kl, ku, seed=21)
    b = random_rhs(n, NRHS, batch=batch, seed=22)
    labels = (("ungoverned", False), ("governed", True))
    seconds, outputs = {}, {}
    _run(True, a, b, n, kl, ku, batch)             # full-size warmup
    for _ in range(max(1, repeats)):
        for label, governed in labels:
            dt, mats, rhs, piv = _run(governed, a, b, n, kl, ku, batch)
            prev = seconds.get(label)
            seconds[label] = dt if prev is None else min(prev, dt)
            outputs[label] = (mats, rhs, piv)
    return seconds, outputs


def _check_bit_identity(outputs):
    """Governance on a fitting batch is a pass-through, bit for bit."""
    for part, name in zip(range(3), ("factors", "solution", "pivots")):
        plain = outputs["ungoverned"][part]
        gov = outputs["governed"][part]
        assert plain.tobytes() == gov.tobytes(), (
            f"governed path changed {name} for a batch that fits")


def _check_chunked_identity(*, n, kl, ku, batch):
    """Forced chunking (chunk_hint) must also be bit-identical."""
    a = random_band_batch(batch, n, kl, ku, seed=23)
    b = random_rhs(n, NRHS, batch=batch, seed=24)
    a1, b1 = a.copy(), b.copy()
    reset_memory_pools()
    piv0, _ = gbsv_batch(n, kl, ku, NRHS, a, None, b, batch=batch)
    reset_memory_pools()
    piv1, _ = gbsv_batch(n, kl, ku, NRHS, a1, None, b1, batch=batch,
                         chunk_hint=max(1, batch // 3))
    assert a.tobytes() == a1.tobytes(), "chunked factors diverge"
    assert b.tobytes() == b1.tobytes(), "chunked solution diverges"
    assert np.stack(piv0).tobytes() == np.stack(piv1).tobytes(), (
        "chunked pivots diverge")


def _render(seconds, *, n, batch):
    ratio = seconds["governed"] / seconds["ungoverned"]
    return ratio, "\n".join([
        "Memory-governance overhead, batch fits in device memory "
        f"(gbsv_batch, batch={batch}, n={n}, kl=ku={KL}, fp64)",
        f"  ungoverned path:   {seconds['ungoverned']:8.3f} s",
        f"  governed path:     {seconds['governed']:8.3f} s",
        f"  overhead:          {(ratio - 1) * 100:8.1f} %   (ceiling 5%)",
    ])


def test_governance_overhead(benchmark):
    seconds, outputs = run_once(benchmark, measure)
    _check_bit_identity(outputs)
    _check_chunked_identity(n=96, kl=KL, ku=KU, batch=48)
    ratio, text = _render(seconds, n=N, batch=BATCH)
    emit("memory_governance_overhead", text)
    assert ratio <= CEILING, (
        f"governed path {(ratio - 1) * 100:.1f}% slower than ungoverned "
        f"for a fitting batch (ceiling {(CEILING - 1) * 100:.0f}%)")


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        seconds, outputs = measure(n=96, batch=64, repeats=1)
        _check_bit_identity(outputs)
        _check_chunked_identity(n=96, kl=KL, ku=KU, batch=48)
        _, text = _render(seconds, n=96, batch=64)
        print(text)
        print("bit-identity OK (quick mode: ratio not asserted)")
    else:
        seconds, outputs = measure()
        _check_bit_identity(outputs)
        _check_chunked_identity(n=96, kl=KL, ku=KU, batch=48)
        ratio, text = _render(seconds, n=N, batch=BATCH)
        emit("memory_governance_overhead", text)
        if ratio > CEILING:
            sys.exit(f"overhead {(ratio - 1) * 100:.1f}% exceeds ceiling")
