"""Shared plumbing for the benchmark suite.

Every ``bench_*`` file regenerates one exhibit of the paper's evaluation:
it computes the modeled series through :mod:`repro.bench`, functionally
validates a small sample of the workload (real numerics), prints the
rendered table (visible with ``pytest -s``), archives it under
``benchmarks/results/``, and asserts the shape criteria from DESIGN.md
Section 7.
"""

from __future__ import annotations

import math
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered exhibit and archive it for later inspection."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def within_factor(measured: float, expected: float, factor: float) -> bool:
    """True when ``measured`` is within ``factor``x of ``expected``."""
    if not (measured > 0 and expected > 0):
        return False
    return 1.0 / factor <= measured / expected <= factor


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The modeled-time harness is deterministic; repeated rounds would only
    measure Python overhead, so one round is the honest measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def finite(values):
    return [v for v in values if v == v and v != float("inf")]


def geomean(values) -> float:
    vals = finite(values)
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
