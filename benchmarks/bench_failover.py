"""Device fault domains: failover-path overhead and outage recovery cost.

Guards the two contracts of the PR 8 failure domain
(docs/ROBUSTNESS.md Section 5):

* **< 5% fault-free overhead** — arming the failover path (two shard
  devices, ``resilient=True``: per-chunk operand snapshots, circuit
  breaker polling, the rounds loop) must cost host bookkeeping only
  when no fault ever fires, measured as wall-clock against the plain
  pipelined run on the same two shards.  Per the ``bench_pipeline``
  idiom, the wall-clock gate only fires on multi-core hosts — on a
  single-core container the two shard worker threads serialize and the
  ratio is scheduler noise; the committed JSON records ``cpu_count``
  and ``wallclock_gated`` so the trajectory stays interpretable;
* **<= 2.5x recovery makespan** — a seeded mid-run 1-of-2-device
  outage (brown-out: the device bounces, trips the breaker, probes
  back in) must finish all lanes within 2.5x the healthy two-device
  modeled makespan.  Recovery re-runs the orphaned chunks on the
  survivor, so some multiple is physics; the gate bounds the
  coordination tax on top.

Bit-identity is asserted in both modes: the outage run must return
exactly the bytes of the healthy run (the snapshot-restore contract).

Alongside the text exhibit, ``benchmarks/results/BENCH_failover.json``
archives every number machine-readably for future perf tracking.

Runnable standalone (``python benchmarks/bench_failover.py [--quick]``)
for the CI chaos job; ``--quick`` shrinks the workload and checks
bit-identity plus the modeled recovery gate only (wall-clock ratios at
small scale are noise).
"""

import json
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.band.generate import random_band_batch, random_rhs
from repro.core import gbsv_batch
from repro.gpusim import H100_PCIE, FaultPlan, fault_injection, replicate_device

from _util import RESULTS_DIR, emit, run_once

N, KL, KU, BATCH, NRHS = 128, 6, 6, 256, 1
CHUNK = 32

OVERHEAD_CEILING = 1.05     # fault-free failover path vs plain pipeline
RECOVERY_CEILING = 2.5      # outage recovery makespan vs healthy makespan

OUTAGE = dict(seed=7, outage_after=0, outage_failures=4)


def _run(a, b, n, kl, ku, batch, *, resilient, plan=None):
    """One pipelined 2-device run; returns (wall, makespan, bytes...)."""
    devs = replicate_device(H100_PCIE, 2)
    mats, rhs = a.copy(), b.copy()
    ctx = (fault_injection(devs[0], plan) if plan is not None
           else _null_ctx())
    t0 = perf_counter()
    with ctx:
        out = gbsv_batch(n, kl, ku, NRHS, mats, None, rhs, batch=batch,
                         chunk_hint=CHUNK, devices=devs,
                         resilient=resilient)
    wall = perf_counter() - t0
    if resilient:
        piv, info, report = out
        makespan = report.makespan
    else:
        piv, info = out
        from repro.core import last_pipeline_result
        makespan = last_pipeline_result().makespan
        report = None
    assert (np.asarray(info) == 0).all()
    return (wall, makespan, report,
            (mats.tobytes(), rhs.tobytes(), np.asarray(piv).tobytes()))


class _null_ctx:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def measure(*, n=N, batch=BATCH, repeats=2):
    """Plain / armed / outage runs; best-of-``repeats`` wall-clock."""
    a = random_band_batch(batch, n, KL, KU, seed=21)
    b = random_rhs(n, NRHS, batch=batch, seed=22)
    runs = {}
    for label, kw in (("plain", dict(resilient=False)),
                      ("armed", dict(resilient=True)),
                      ("outage", dict(resilient=True,
                                      plan=FaultPlan(**OUTAGE)))):
        best = None
        for _ in range(max(1, repeats)):
            wall, makespan, report, out = _run(a, b, n, KL, KU, batch, **kw)
            if best is None or wall < best[0]:
                best = (wall, makespan, report, out)
        runs[label] = best
    return runs


def _check(runs):
    """Bit-identity + the armed path really failed over under the storm."""
    assert runs["armed"][3] == runs["plain"][3], (
        "fault-free failover path changed results")
    assert runs["outage"][3] == runs["armed"][3], (
        "outage recovery is not bit-identical to the healthy run")
    rep = runs["outage"][2]
    assert rep.failovers > 0, "the seeded outage never caused a failover"
    kinds = {e["event"] for e in rep.device_events}
    assert "trip" in kinds and "probe" in kinds, (
        f"breaker arc missing from device_events: {sorted(kinds)}")


def _render(runs, *, n, batch):
    overhead = runs["armed"][0] / runs["plain"][0]
    recovery = runs["outage"][1] / runs["armed"][1]
    rep = runs["outage"][2]
    text = "\n".join([
        "Device fault domains: failover overhead and outage recovery "
        f"(gbsv_batch, batch={batch}, n={n}, kl=ku={KL}, "
        f"chunk={CHUNK}, 2x h100-pcie)",
        f"  plain 2-dev wall:        {runs['plain'][0]:8.3f} s",
        f"  armed 2-dev wall:        {runs['armed'][0]:8.3f} s"
        f"   (overhead {(overhead - 1) * 100:+.1f}%, ceiling "
        f"{(OVERHEAD_CEILING - 1) * 100:.0f}%)",
        f"  healthy makespan:        {runs['armed'][1] * 1e3:8.3f} ms",
        f"  outage makespan:         {runs['outage'][1] * 1e3:8.3f} ms"
        f"   (recovery {recovery:.2f}x, ceiling {RECOVERY_CEILING}x)",
        f"  outage failovers={rep.failovers} rounds with "
        f"device_events={len(rep.device_events)}",
        "  bit-identity: outage == armed == plain",
    ])
    return overhead, recovery, text


def _emit_json(runs, *, n, batch, overhead, recovery, wallclock_gated):
    payload = {
        "cpu_count": os.cpu_count(),
        "workload": {"n": n, "kl": KL, "ku": KU, "batch": batch,
                     "chunk_hint": CHUNK, "devices": 2},
        "gates": {"overhead_ceiling": round(OVERHEAD_CEILING - 1.0, 9),
                  "recovery_ceiling": RECOVERY_CEILING,
                  "wallclock_gated": wallclock_gated},
        "wallclock_s": {k: runs[k][0] for k in runs},
        "modeled_makespan_s": {k: runs[k][1] for k in runs},
        "overhead_armed_vs_plain": overhead - 1.0,
        "recovery_vs_healthy": recovery,
        "outage_failovers": runs["outage"][2].failovers,
        "outage_device_events": len(runs["outage"][2].device_events),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_failover.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_failover(benchmark):
    runs = run_once(benchmark, measure)
    _check(runs)
    overhead, recovery, text = _render(runs, n=N, batch=BATCH)
    emit("failover_recovery", text)
    gated = (os.cpu_count() or 1) > 1
    _emit_json(runs, n=N, batch=BATCH, overhead=overhead,
               recovery=recovery, wallclock_gated=gated)
    assert recovery <= RECOVERY_CEILING, (
        f"outage recovery {recovery:.2f}x exceeds {RECOVERY_CEILING}x")
    if gated:
        assert overhead <= OVERHEAD_CEILING, (
            f"fault-free failover path {(overhead - 1) * 100:.1f}% slower "
            f"than plain (ceiling {(OVERHEAD_CEILING - 1) * 100:.0f}%)")


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        # Enough chunks per shard (7) that re-sharding the orphans can
        # actually amortize; the modeled ratio is deterministic.
        runs = measure(n=48, batch=224, repeats=1)
        _check(runs)
        overhead, recovery, text = _render(runs, n=48, batch=224)
        print(text)
        if recovery > RECOVERY_CEILING:
            sys.exit(f"recovery {recovery:.2f}x exceeds ceiling")
        print("bit-identity + recovery gate OK "
              "(quick mode: wall-clock not asserted)")
    else:
        runs = measure()
        _check(runs)
        overhead, recovery, text = _render(runs, n=N, batch=BATCH)
        emit("failover_recovery", text)
        gated = (os.cpu_count() or 1) > 1
        _emit_json(runs, n=N, batch=BATCH, overhead=overhead,
                   recovery=recovery, wallclock_gated=gated)
        if recovery > RECOVERY_CEILING:
            sys.exit(f"recovery {recovery:.2f}x exceeds ceiling")
        if gated and overhead > OVERHEAD_CEILING:
            sys.exit(f"overhead {(overhead - 1) * 100:.1f}% exceeds ceiling")
