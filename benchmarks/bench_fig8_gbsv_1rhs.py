"""Figure 8: final GBSV execution time, single right-hand side.

Paper: "In most cases, the GPU solution is better than the CPU solution.
However, the CPU remains a close competitor for AMD GPUs, especially for
larger lower/upper bandwidths"; and the H100/MI250x gap (up to 1.88x for
(2,3) and 3.68x for (10,7)) exceeds the 1.47x bandwidth ratio — evidence
that shared-memory capacity, not bandwidth, is the limiter.
"""

import math

import numpy as np

from repro.bench import fig8, format_figure
from repro.band.generate import random_band_batch, random_rhs
from repro.band.ops import solve_residual
from repro.core import gbsv_batch
from repro.gpusim import H100_PCIE

from _util import emit, run_once


def test_fig8_kl2_ku3(benchmark):
    fig = run_once(benchmark, lambda: fig8(2, 3))
    emit("fig8_kl2_ku3", format_figure(fig))
    h100 = fig.series_by_label("H100").times
    cpu = fig.series_by_label("mkl+openmp").times
    assert all(not math.isnan(t) for t in h100)
    # H100 beats the CPU across the sweep (Table 2 min 2.23x).
    assert all(c > t for c, t in zip(cpu, h100))


def test_fig8_kl10_ku7(benchmark):
    fig = run_once(benchmark, lambda: fig8(10, 7))
    emit("fig8_kl10_ku7", format_figure(fig))
    mi = fig.series_by_label("MI250x").times
    cpu = fig.series_by_label("mkl+openmp").times
    # "the CPU remains a close competitor for AMD GPUs ... for larger
    # bandwidths": somewhere the CPU nearly matches or beats the MI250x.
    assert min(c / t for c, t in zip(cpu, mi)) < 1.3


def test_fig8_gap_exceeds_bandwidth_ratio():
    """Section 8's key argument, reproduced quantitatively."""
    bw_ratio = H100_PCIE.dram_bandwidth / 1.31e12          # 1.47x
    fig_23 = fig8(2, 3)
    fig_107 = fig8(10, 7)
    for fig, paper_max in ((fig_23, 1.88), (fig_107, 3.68)):
        h = np.array(fig.series_by_label("H100").times)
        m = np.array(fig.series_by_label("MI250x").times)
        gap = np.nanmax(m / h)
        assert gap > bw_ratio, (
            f"H100/MI gap {gap:.2f} should exceed the bandwidth ratio "
            f"{bw_ratio:.2f} (paper: up to {paper_max}x)")


def test_fig8_functional_sample():
    """The timed configuration solves correctly (real numerics)."""
    n, kl, ku = 256, 2, 3
    a = random_band_batch(8, n, kl, ku, seed=88)
    b = random_rhs(n, 1, batch=8, seed=89)
    a0 = a.copy()
    piv, info = gbsv_batch(n, kl, ku, 1, a, None, b)
    assert (info == 0).all()
    worst = max(solve_residual(a0[k], b[k],
                               random_rhs(n, 1, batch=8, seed=89)[k], kl, ku)
                for k in range(8))
    assert worst < 1e-13
