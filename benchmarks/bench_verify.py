"""Verified-solve overhead: ``verify='cheap'`` with zero faults.

The integrity layer (``core/verify.py``) buys its silent-data-corruption
defense with pristine operand snapshots plus one O(n*k)-per-lane
residual gate against the O(n*k^2) factorization it guards.  This
benchmark times a paper-scale ``gbsv_batch`` workload (batch 1000,
n=256, kl=ku=8, fp64) on the plain path versus ``verify=True`` (cheap
mode) with no fault plan armed, checks the two produce bit-identical
factors/solutions (the healthy-lane contract of docs/ROBUSTNESS.md
Section 6), and asserts the fault-free overhead stays under 10%.

Alongside the text exhibit, ``benchmarks/results/BENCH_verify.json``
archives every number machine-readably for future perf tracking.

Runnable standalone (``python benchmarks/bench_verify.py [--quick]``)
for the CI integrity job; ``--quick`` shrinks the workload and checks
bit-identity plus seeded SDC detection/recovery only, since timing
ratios at small scale are noise.
"""

import json
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.band.generate import random_band_batch, random_rhs
from repro.core import VerifyPolicy, gbsv_batch
from repro.gpusim import H100_PCIE, FaultPlan, fault_injection

from _util import RESULTS_DIR, emit, run_once

N, KL, KU, BATCH, NRHS = 256, 8, 8, 1000, 1

# Acceptance ceiling is 10%: one operand snapshot plus a banded
# residual gate vectorized across all lanes, against ~0.5 s of
# factorization work.
CEILING = 1.10


def _run(verify, a, b, n, kl, ku, batch):
    mats, rhs = a.copy(), b.copy()
    t0 = perf_counter()
    out = gbsv_batch(n, kl, ku, NRHS, mats, None, rhs, batch=batch,
                     verify=verify)
    dt = perf_counter() - t0
    if verify:
        piv, info, report = out
        assert report.verified_lanes == batch
        assert not report.sdc_detected and not report.unrecovered
    else:
        piv, info = out
        report = None
    assert (np.asarray(info) == 0).all()
    return dt, report, mats, rhs, np.stack(piv)


def measure(*, n=N, kl=KL, ku=KU, batch=BATCH, repeats=2):
    """Best-of-``repeats`` wall-clock for both paths, plus their outputs."""
    a = random_band_batch(batch, n, kl, ku, seed=31)
    b = random_rhs(n, NRHS, batch=batch, seed=32)
    seconds, reports, outputs = {}, {}, {}
    for label, verify in (("plain", False), ("verified", True)):
        _run(verify, a[:min(8, batch)], b[:min(8, batch)],
             n, kl, ku, min(8, batch))            # warmup
        best = None
        for _ in range(max(1, repeats)):
            dt, report, mats, rhs, piv = _run(verify, a, b, n, kl, ku,
                                              batch)
            best = dt if best is None else min(best, dt)
        seconds[label] = best
        reports[label] = report
        outputs[label] = (mats, rhs, piv)
    return seconds, reports, outputs


def _check_bit_identity(outputs):
    """Zero faults => the verified path never touches a healthy lane."""
    for part, name in zip(range(3), ("factors", "solution", "pivots")):
        plain = outputs["plain"][part]
        ver = outputs["verified"][part]
        assert plain.tobytes() == ver.tobytes(), (
            f"verified path changed {name} with no faults armed")


def _check_detection(*, n, kl, ku, batch):
    """A seeded SDC storm is detected and recovered bit-identically.

    Runs at ``n<=48`` so the fused ``gbsv`` kernel fires and the
    ``sdc_after="gbsv"`` filter matches the launched kernel name.
    """
    a = random_band_batch(batch, n, kl, ku, seed=31)
    b = random_rhs(n, NRHS, batch=batch, seed=32)
    clean_a, clean_b = a.copy(), b.copy()
    gbsv_batch(n, kl, ku, NRHS, clean_a, None, clean_b, batch=batch)
    lanes = (1, batch // 2)
    plan = FaultPlan(seed=5, sdc_lanes=lanes, sdc_after="gbsv",
                     sdc_operand=1)
    with fault_injection(H100_PCIE, plan):
        _, info, report = gbsv_batch(n, kl, ku, NRHS, a, None, b,
                                     batch=batch, verify=True)
    assert (np.asarray(info) == 0).all()
    assert report.sdc_detected == lanes, (
        f"storm on lanes {lanes} detected as {report.sdc_detected}")
    assert report.sdc_recovered == lanes
    assert b.tobytes() == clean_b.tobytes(), (
        "SDC recovery is not bit-identical to the clean run")


def _render(seconds, report, *, n, batch):
    ratio = seconds["verified"] / seconds["plain"]
    return ratio, "\n".join([
        "Verified-solve overhead, zero faults "
        f"(gbsv_batch, batch={batch}, n={n}, kl=ku={KL}, fp64, "
        "verify='cheap')",
        f"  plain path:        {seconds['plain']:8.3f} s",
        f"  verified path:     {seconds['verified']:8.3f} s",
        f"  overhead:          {(ratio - 1) * 100:8.1f} %   (ceiling 10%)",
        f"  lanes gated={report.verified_lanes} "
        f"residual_max={report.residual_max:.3e} "
        f"(tol {VerifyPolicy().tol_for(n, np.float64):.3e})",
    ])


def _emit_json(seconds, report, *, n, batch, ratio):
    payload = {
        "cpu_count": os.cpu_count(),
        "workload": {"n": n, "kl": KL, "ku": KU, "batch": batch,
                     "nrhs": NRHS, "verify": "cheap"},
        "gates": {"overhead_ceiling": round(CEILING - 1.0, 9)},
        "wallclock_s": dict(seconds),
        "overhead_verified_vs_plain": ratio - 1.0,
        "verified_lanes": report.verified_lanes,
        "residual_max": report.residual_max,
        "residual_tol": VerifyPolicy().tol_for(n, np.float64),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_verify.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_verify_overhead(benchmark):
    seconds, reports, outputs = run_once(benchmark, measure)
    _check_bit_identity(outputs)
    ratio, text = _render(seconds, reports["verified"], n=N, batch=BATCH)
    emit("verify_overhead", text)
    _emit_json(seconds, reports["verified"], n=N, batch=BATCH, ratio=ratio)
    assert ratio <= CEILING, (
        f"fault-free verified path {(ratio - 1) * 100:.1f}% slower "
        f"than plain (ceiling {(CEILING - 1) * 100:.0f}%)")


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        seconds, reports, outputs = measure(n=96, batch=64, repeats=1)
        _check_bit_identity(outputs)
        _check_detection(n=48, kl=KL, ku=KU, batch=64)
        _, text = _render(seconds, reports["verified"], n=96, batch=64)
        print(text)
        print("bit-identity + SDC detection OK "
              "(quick mode: ratio not asserted)")
    else:
        seconds, reports, outputs = measure()
        _check_bit_identity(outputs)
        _check_detection(n=48, kl=KL, ku=KU, batch=64)
        ratio, text = _render(seconds, reports["verified"], n=N,
                              batch=BATCH)
        emit("verify_overhead", text)
        _emit_json(seconds, reports["verified"], n=N, batch=BATCH,
                   ratio=ratio)
        if ratio > CEILING:
            sys.exit(f"overhead {(ratio - 1) * 100:.1f}% exceeds ceiling")
