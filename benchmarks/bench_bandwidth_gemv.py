"""Section 8: sustained memory bandwidth estimated with very large GEMV.

Paper: "By running very large dense matrix vector products (GEMV), we are
able to estimate the sustained peak memory bound on both GPUs.  The
H100-PCIe GPU achieves 47% higher bandwidth, scoring about 1.92 TB/s,
versus 1.31 TB/s for a single GCD of the MI250x GPU."
"""

from repro.bench import bandwidth_gemv

from _util import emit, run_once, within_factor

PAPER_H100 = 1.92e12
PAPER_MI = 1.31e12


def test_bandwidth_gemv(benchmark):
    bw = run_once(benchmark, bandwidth_gemv)
    text = "\n".join(
        [f"Section 8: sustained GEMV bandwidth",
         f"  h100-pcie : {bw['h100-pcie'] / 1e12:.2f} TB/s (paper 1.92)",
         f"  mi250x-gcd: {bw['mi250x-gcd'] / 1e12:.2f} TB/s (paper 1.31)",
         f"  ratio     : {bw['h100-pcie'] / bw['mi250x-gcd']:.2f}x "
         f"(paper 1.47x)"])
    emit("bandwidth_gemv", text)
    assert within_factor(bw["h100-pcie"], PAPER_H100, 1.1)
    assert within_factor(bw["mi250x-gcd"], PAPER_MI, 1.1)
    ratio = bw["h100-pcie"] / bw["mi250x-gcd"]
    assert within_factor(ratio, PAPER_H100 / PAPER_MI, 1.1)
