"""Solver service: coalescing + factorization-cache throughput and latency.

Guards the serving-layer contract of ``repro/serve`` (docs/SERVING.md):

* **>= 2x throughput over one-request-per-dispatch** at coalescing
  steady state on a repeated-operator workload — micro-batching
  amortizes the per-dispatch driver overhead across the group, and the
  factorization cache removes the ``gbtrf`` stage entirely for the
  repeated operators, so the coalesce+cache configuration must clear the
  per-request baseline by at least 2x;
* **coalescing is transparent** — every configuration must return
  bit-identical solutions for the identical request stream;
* **latency is accounted** — p50/p95/p99 request latency is measured
  from each request's *arrival* (open-loop), so ingress queueing under
  overload is charged to the slow configuration, not hidden.

The arrival process is open-loop and virtual-time: a seeded exponential
interarrival sequence fixes when each request *arrives*, a
:class:`VirtualClock` fast-forwards through idle gaps but charges real
wall time while the service is busy, and the same stream (operators,
right-hand sides, arrival times) is replayed against every
configuration.  Throughput is completed requests over the virtual
makespan; latency is completion minus arrival on the same clock.

Alongside the text exhibit, ``benchmarks/results/BENCH_serve.json``
archives every number machine-readably for future perf tracking.

Runnable standalone (``python benchmarks/bench_serve.py [--quick]``)
for the CI serve job; ``--quick`` shrinks the request count and keeps
the bit-identity + throughput-floor gates.
"""

import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.band.generate import random_band, random_rhs
from repro.gpusim.memory import reset_memory_pools
from repro.serve import BatchingPolicy, SolverService

from _util import RESULTS_DIR, emit, run_once

N, KL, KU = 64, 3, 3
REQUESTS, OPERATORS, MAX_GROUP = 384, 6, 32
SEED = 2023

THROUGHPUT_FLOOR = 2.0      # coalesce+cache vs per-request baseline


class VirtualClock:
    """Wall clock with fast-forward: waiting is free, work costs real time.

    ``advance_to`` jumps over the idle gap to the next arrival;
    everything the service does between arrivals accrues at real
    ``perf_counter`` rate.  This makes an open-loop arrival process
    replayable in far less wall time than it simulates while keeping the
    service-time measurements honest.
    """

    def __init__(self):
        self._base = 0.0
        self._anchor = perf_counter()

    def __call__(self) -> float:
        return self._base + (perf_counter() - self._anchor)

    def advance_to(self, t: float) -> None:
        now = self()
        if t > now:
            self._base += t - now


def _workload(requests, operators, *, seed=SEED):
    """The replayable request stream: (arrival_s, operator, rhs) triples.

    Operators repeat (the time-stepper pattern the cache exists for);
    right-hand sides are fresh per request; arrivals are a seeded
    exponential process whose mean rate the caller scales afterwards.
    """
    rng = np.random.default_rng(seed)
    ops = [random_band(N, KL, KU, seed=1000 + k) for k in range(operators)]
    stream = []
    t = 0.0
    for i in range(requests):
        t += float(rng.exponential(1.0))            # unit-mean; rescaled
        ab = ops[int(rng.integers(operators))]
        b = random_rhs(N, 1, seed=int(rng.integers(1 << 30)))
        stream.append((t, ab, b))
    return stream


def _replay(stream, mean_interarrival, **service_kw):
    """Run one configuration over the stream; returns (report, metrics)."""
    reset_memory_pools()
    clock = VirtualClock()
    arrivals, handles = [], []
    with SolverService(clock=clock, **service_kw) as svc:
        for t_unit, ab, b in stream:
            arrival = t_unit * mean_interarrival
            clock.advance_to(arrival)
            arrivals.append(arrival)
            handles.append(svc.submit(KL, KU, ab, b))
        svc.flush()
        report = svc.report()
    lat = np.array([h.completed_at - a for h, a in zip(handles, arrivals)])
    makespan = max(h.completed_at for h in handles) - arrivals[0]
    sols = [h.solution.tobytes() for h in handles]
    return report, {
        "throughput_rps": len(handles) / makespan,
        "p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "p95_ms": float(np.percentile(lat, 95)) * 1e3,
        "p99_ms": float(np.percentile(lat, 99)) * 1e3,
        "makespan_s": makespan,
        "solutions": sols,
    }


def measure(*, requests=REQUESTS, operators=OPERATORS):
    """Replay the identical stream against the three configurations.

    The arrival rate is calibrated to saturate the per-request baseline
    (mean interarrival = a tenth of its cold per-request service time),
    so every configuration is throughput-bound and the ratio measures
    dispatch efficiency, not idle time.
    """
    stream = _workload(requests, operators)

    # Calibrate: cold per-request service time on a short prefix.
    _, probe = _replay(stream[:8], 1e-9, cache_entries=0,
                       policy=BatchingPolicy(max_group=1))
    per_req = probe["makespan_s"] / 8
    mean_ia = per_req / 10.0

    configs = {
        "per-request": dict(cache_entries=0,
                            policy=BatchingPolicy(max_group=1)),
        "coalesce": dict(cache_entries=0,
                         policy=BatchingPolicy(max_group=MAX_GROUP,
                                               max_delay=per_req)),
        "coalesce+cache": dict(policy=BatchingPolicy(max_group=MAX_GROUP,
                                                     max_delay=per_req)),
    }
    reports, metrics = {}, {}
    for label, kw in configs.items():
        reports[label], metrics[label] = _replay(stream, mean_ia, **kw)
    return reports, metrics


def _check_bit_identity(metrics):
    ref = metrics["per-request"]["solutions"]
    for label, m in metrics.items():
        assert m["solutions"] == ref, (
            f"configuration {label!r} changed the solutions")


def _summary(reports, metrics, *, requests, operators):
    configs = {}
    for label, m in metrics.items():
        rep = reports[label]
        configs[label] = {
            "throughput_rps": m["throughput_rps"],
            "latency_ms": {"p50": m["p50_ms"], "p95": m["p95_ms"],
                           "p99": m["p99_ms"]},
            "makespan_s": m["makespan_s"],
            "mean_group_size": rep.mean_group_size,
            "cache_hit_rate": rep.hit_rate,
            "factorizations": rep.factorizations,
        }
    base = metrics["per-request"]["throughput_rps"]
    return {
        "workload": {"requests": requests, "operators": operators,
                     "n": N, "kl": KL, "ku": KU, "nrhs": 1,
                     "max_group": MAX_GROUP, "dtype": "float64",
                     "arrivals": "open-loop seeded exponential",
                     "seed": SEED},
        "configs": configs,
        "speedup": {label: m["throughput_rps"] / base
                    for label, m in metrics.items()},
        "gates": {"throughput_floor": THROUGHPUT_FLOOR},
    }


def _render(s):
    w = s["workload"]
    lines = [
        "Solver service: open-loop throughput and latency "
        f"({w['requests']} requests over {w['operators']} operators, "
        f"n={w['n']}, kl=ku={w['kl']}, fp64)",
        "",
        "  config              rps    p50 ms    p95 ms    p99 ms"
        "   group   hit%   gbtrf",
    ]
    for label in ("per-request", "coalesce", "coalesce+cache"):
        c = s["configs"][label]
        lat = c["latency_ms"]
        lines.append(
            f"  {label:<16} {c['throughput_rps']:6.0f} "
            f"{lat['p50']:9.2f} {lat['p95']:9.2f} {lat['p99']:9.2f} "
            f"{c['mean_group_size']:7.1f} "
            f"{c['cache_hit_rate'] * 100:5.0f}% "
            f"{c['factorizations']:7d}")
    lines += [
        "",
        f"  throughput speedup, coalesce:        "
        f"{s['speedup']['coalesce']:.2f}x",
        f"  throughput speedup, coalesce+cache:  "
        f"{s['speedup']['coalesce+cache']:.2f}x   (floor "
        f"{s['gates']['throughput_floor']:.1f}x)",
    ]
    return "\n".join(lines)


def _emit_json(s):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_serve.json"
    path.write_text(json.dumps(s, indent=2, sort_keys=True) + "\n")


def _assert_gates(s):
    assert s["speedup"]["coalesce+cache"] >= THROUGHPUT_FLOOR, (
        f"coalesce+cache throughput "
        f"{s['speedup']['coalesce+cache']:.2f}x below the "
        f"{THROUGHPUT_FLOOR}x floor over per-request dispatch")
    assert s["speedup"]["coalesce"] > 1.0, (
        "coalescing alone did not beat per-request dispatch")
    cc = s["configs"]["coalesce+cache"]
    assert cc["cache_hit_rate"] > 0.5, (
        f"repeated-operator workload only hit the cache "
        f"{cc['cache_hit_rate'] * 100:.0f}% of the time")
    assert cc["mean_group_size"] > 1.0, (
        "coalescing never formed a group larger than one request")


def test_serve_throughput(benchmark):
    reports, metrics = run_once(benchmark, measure)
    _check_bit_identity(metrics)
    s = _summary(reports, metrics, requests=REQUESTS, operators=OPERATORS)
    emit("serve", _render(s))
    _emit_json(s)
    _assert_gates(s)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        reports, metrics = measure(requests=48, operators=4)
        _check_bit_identity(metrics)
        s = _summary(reports, metrics, requests=48, operators=4)
        print(_render(s))
        _assert_gates(s)
        print("bit-identity and throughput gates OK (quick mode)")
    else:
        reports, metrics = measure()
        _check_bit_identity(metrics)
        s = _summary(reports, metrics, requests=REQUESTS,
                     operators=OPERATORS)
        emit("serve", _render(s))
        _emit_json(s)
        _assert_gates(s)
