"""Bucketed vectorization of a mixed-shape batch: host wall-clock speedup.

Companion to ``bench_vectorized_speedup.py`` for *non-uniform* batches:
a paper-scale batch of 1000 problems drawn from six configurations is
factored through ``gbtrf_vbatch`` on the per-block path and on the
bucketed batch-interleaved path, which groups lanes by configuration and
advances each bucket through the window schedule together.  The two paths
must produce bit-identical factors; the target here is a >= 5x host
wall-clock win on the mixed batch.
"""

import numpy as np

from repro.band.generate import random_band
from repro.bench import wallclock_vbatch_paths
from repro.core.batched import gbtrf_vbatch

from _util import emit, run_once

# Six configurations, n in 96..256 with small bands — the irregular-batch
# regime the paper's Section 9 extension targets.  1000 lanes total.
CONFIGS = [(96, 2, 3), (128, 1, 2), (128, 4, 4), (160, 2, 2),
           (192, 3, 1), (256, 2, 3)]
LANES_PER_CONFIG = [250, 200, 150, 150, 150, 100]
BATCH = sum(LANES_PER_CONFIG)

# Regression floor: below the 5x acceptance target for slack against noisy
# CI neighbours, but far above what a de-vectorized bucket loop reaches.
FLOOR = 5.0


def _mixed_configs():
    lanes = []
    for cfg, count in zip(CONFIGS, LANES_PER_CONFIG):
        lanes += [cfg] * count
    # Interleave configurations so buckets are scattered across the batch,
    # not pre-sorted runs (the dispatch must do the grouping, not us).
    order = np.random.default_rng(3).permutation(len(lanes))
    return [lanes[i] for i in order]


def test_vbatch_paths_bit_identical():
    lanes = _mixed_configs()[:60]
    rng = np.random.default_rng(9)
    mats = [random_band(n, kl, ku, seed=rng) for n, kl, ku in lanes]
    ns = [c[0] for c in lanes]
    kls = [c[1] for c in lanes]
    kus = [c[2] for c in lanes]
    ref = [a.copy() for a in mats]
    piv_ref, info_ref = gbtrf_vbatch(ns, ns, kls, kus, ref,
                                     vectorize=False)
    vec = [a.copy() for a in mats]
    piv_vec, info_vec = gbtrf_vbatch(ns, ns, kls, kus, vec,
                                     vectorize=True)
    for k in range(len(lanes)):
        assert vec[k].tobytes() == ref[k].tobytes()
        assert piv_vec[k].tobytes() == piv_ref[k].tobytes()
    assert info_vec.tobytes() == info_ref.tobytes()


def test_vbatch_vectorized_speedup(benchmark):
    lanes = _mixed_configs()
    assert len(lanes) == BATCH
    r = run_once(benchmark, lambda: wallclock_vbatch_paths(
        lanes, repeats=2, warmup=True))
    text = "\n".join([
        "Bucketed batch-interleaved speedup on a mixed-shape batch "
        f"(gbtrf_vbatch, batch={BATCH}, {len(CONFIGS)} configurations, "
        "fp64)",
        "  configurations (n, kl, ku) x lanes: " + ", ".join(
            f"{cfg} x{cnt}"
            for cfg, cnt in zip(CONFIGS, LANES_PER_CONFIG)),
        f"  per-block path:    {r.per_block:8.3f} s",
        f"  vectorized path:   {r.vectorized:8.3f} s",
        f"  speedup:           {r.speedup:8.1f} x   (target >= 5x)",
    ])
    emit("vbatch_vectorized", text)
    assert r.speedup >= FLOOR, (
        f"bucketed vectorized path only {r.speedup:.1f}x faster "
        f"(floor {FLOOR}x)")
