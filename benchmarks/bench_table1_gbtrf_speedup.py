"""Table 1: batch band LU speedups against the parallel CPU solution.

Shape criteria (DESIGN.md Section 7): measured min/max/avg land near the
paper's bands, with the orderings preserved — H100 above MI250x, and the
wide band (10, 7) *helping* the H100 while hurting the MI250x (whose small
LDS limits residency; the paper records an average of just 1.16x there).
"""

from repro.bench import format_speedup_table, table1

from _util import emit, run_once, within_factor

TOLERANCE = 1.45   # ±45% on the table averages


def test_table1(benchmark):
    rows = run_once(benchmark, table1)
    emit("table1", format_speedup_table(
        "Table 1: GBTRF speedup vs mkl+openmp (batch 1000, fp64)", rows))
    by_label = {r.label: r for r in rows}

    for r in rows:
        assert within_factor(r.avg, r.paper_avg, TOLERANCE), (
            f"{r.label}: avg {r.avg:.2f} vs paper {r.paper_avg:.2f}")

    h23 = by_label["H100 (kl,ku)=(2,3)"]
    h107 = by_label["H100 (kl,ku)=(10,7)"]
    m23 = by_label["MI250x (kl,ku)=(2,3)"]
    m107 = by_label["MI250x (kl,ku)=(10,7)"]

    # H100 dominates the MI250x on both bands.
    assert h23.avg > m23.avg
    assert h107.avg > m107.avg
    # Larger bands have "a greater impact on the performance of the AMD
    # GPU": its relative standing falls while the H100's rises.
    assert h107.avg > h23.avg
    assert m107.avg < m23.avg
    # The MI250x comes close to losing to the CPU for (10, 7)
    # (paper min 0.96x).
    assert m107.min < 1.1
    # Everything is a genuine GPU win on the H100.
    assert h23.min > 1.5 and h107.min > 1.5
