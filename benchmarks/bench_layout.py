"""Batch-interleaved (SoA) layout: staging savings over the classic path.

Guards the layout contract of docs/LAYOUTS.md (docs/PERFORMANCE.md
"Storage layouts"):

* **>= 1.15x host wall-clock win for an interleaved batch** over the
  same lane-major batch on the classic ``[vec]`` route, at the paper's
  large configuration (``gbsv_batch``, batch=1000, n=256, kl=ku=8).
  The batch-interleaved body stages lane-major batches with an
  ``np.stack`` gather and a per-lane scatter (~50 MB each way per launch
  at this scale); an interleaved batch is staged as a zero-copy strided
  view instead, so the whole gather/scatter traffic disappears while the
  arithmetic stays bit-identical;
* **<= 1.3x wall-clock for ``layout='soa'`` on lane-major input** —
  converting at the batch boundary costs one gather + one scatter total
  (trace-attributed to the first launch's ``soa_bytes``), after which
  every stage runs conversion-free, so opting in never costs more than a
  modest premium over staying lane-major and usually breaks even;
* **trace proof of the one-conversion contract** — the converting run
  carries exactly one launch record with ``soa_bytes > 0``, the native
  interleaved run carries none, and every record is ``[vec+soa]``;
* **bit-identity** — factors, solutions and pivots of every contender
  match the lane-major reference byte-for-byte.

Alongside the text exhibit, ``benchmarks/results/BENCH_layout.json``
archives every number machine-readably for future perf tracking.

Runnable standalone (``python benchmarks/bench_layout.py [--quick]``)
for the CI layout job; ``--quick`` shrinks the workload and checks
bit-identity plus the trace contract only (wall-clock ratios at small
scale are noise).
"""

import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.band.generate import random_band_batch, random_rhs
from repro.band.layout import to_interleaved
from repro.core import gbsv_batch
from repro.gpusim import H100_PCIE, Stream
from repro.gpusim.memory import reset_memory_pools

from _util import RESULTS_DIR, emit, run_once

N, KL, KU, NRHS, BATCH = 256, 8, 8, 1, 1000

SPEEDUP_FLOOR = 1.15        # interleaved native vs lane-major [vec]
CONVERT_CEILING = 1.3       # layout='soa' on lane-major input vs [vec]


def _run(a0, b0, n, kl, ku, batch, *, interleave, layout=None):
    """One full gbsv on fresh copies; returns (wall_s, outputs, records)."""
    a, b = a0.copy(), b0.copy()
    if interleave:
        a, b = to_interleaved(a), to_interleaved(b)
    reset_memory_pools()
    stream = Stream(H100_PCIE)
    t0 = perf_counter()
    piv, info = gbsv_batch(n, kl, ku, NRHS, a, None, b, batch=batch,
                           stream=stream, layout=layout)
    stream.synchronize()
    dt = perf_counter() - t0
    assert (np.asarray(info) == 0).all()
    out = (np.ascontiguousarray(a), np.ascontiguousarray(b),
           np.asarray(piv))
    recs = [r for r in stream.records if hasattr(r, "display_name")]
    return dt, out, recs


def measure(*, n=N, kl=KL, ku=KU, batch=BATCH, repeats=3):
    """Wall-clocks, outputs and launch records for every contender.

    Contenders are interleaved within each repeat and taken
    best-of-``repeats`` so allocator warm-up and scheduler noise land on
    every side equally (same protocol as ``bench_pipeline.py``).
    """
    a0 = random_band_batch(batch, n, kl, ku, seed=21)
    b0 = random_rhs(n, NRHS, batch=batch, seed=22)

    configs = {
        "lane-major": dict(interleave=False),
        "interleaved": dict(interleave=True),
        "convert-at-boundary": dict(interleave=False, layout="soa"),
    }
    for kw in configs.values():                          # warmup, all paths
        _run(a0, b0, n, kl, ku, batch, **kw)
    wall, outputs, records = {}, {}, {}
    for _ in range(max(1, repeats)):
        for label, kw in configs.items():
            dt, out, recs = _run(a0, b0, n, kl, ku, batch, **kw)
            wall[label] = min(wall.get(label, dt), dt)
            outputs[label] = out
            records[label] = recs
    return wall, outputs, records


def _check_bit_identity(outputs):
    ref = outputs["lane-major"]
    for label, out in outputs.items():
        for part, name in zip(range(3), ("factors", "solution", "pivots")):
            assert out[part].tobytes() == ref[part].tobytes(), (
                f"layout contender {label!r} changed {name}")


def _check_trace_contract(records):
    for label in ("interleaved", "convert-at-boundary"):
        assert all("[vec+soa]" in r.display_name for r in records[label]), (
            f"{label!r} did not run SoA-native: "
            f"{[r.display_name for r in records[label]]}")
    assert sum(r.soa_bytes > 0 for r in records["interleaved"]) == 0, (
        "native interleaved input was charged a layout conversion")
    charged = [r.soa_bytes for r in records["convert-at-boundary"]
               if r.soa_bytes > 0]
    assert len(charged) == 1, (
        f"layout='soa' must convert exactly once per batch, "
        f"saw {len(charged)} charged launches")
    assert not any("soa" in r.display_name
                   for r in records["lane-major"])


def _summary(wall, records, *, n, batch):
    conv_bytes = sum(r.soa_bytes for r in records["convert-at-boundary"])
    return {
        "workload": {"op": "gbsv", "n": n, "kl": KL, "ku": KU,
                     "nrhs": NRHS, "batch": batch, "dtype": "float64",
                     "device": H100_PCIE.name},
        "wallclock_s": dict(wall),
        "speedup_interleaved":
            wall["lane-major"] / wall["interleaved"],
        "convert_ratio":
            wall["convert-at-boundary"] / wall["lane-major"],
        "conversion_bytes": conv_bytes,
        "launches": {k: len(v) for k, v in records.items()},
        "gates": {"speedup_floor": SPEEDUP_FLOOR,
                  "convert_ceiling": CONVERT_CEILING},
    }


def _render(s):
    w = s["workload"]
    lines = [
        "Storage layouts: batch-interleaved (SoA) vs lane-major "
        f"(gbsv_batch, batch={w['batch']}, n={w['n']}, "
        f"kl=ku={w['kl']}, fp64)",
        "",
        "  contender              wall-clock   launches",
    ]
    for label in ("lane-major", "interleaved", "convert-at-boundary"):
        lines.append(f"  {label:<21} {s['wallclock_s'][label]:8.3f} s "
                     f"{s['launches'][label]:8d}")
    lines += [
        "",
        f"  interleaved speedup over lane-major:  "
        f"{s['speedup_interleaved']:.2f}x   (floor "
        f"{s['gates']['speedup_floor']:.2f}x)",
        f"  layout='soa' conversion ratio:        "
        f"{s['convert_ratio']:.2f}x   (ceiling "
        f"{s['gates']['convert_ceiling']:.1f}x)",
        f"  conversion traffic, one round-trip:   "
        f"{s['conversion_bytes'] / 1e6:.1f} MB",
    ]
    return "\n".join(lines)


def _emit_json(s):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_layout.json"
    path.write_text(json.dumps(s, indent=2, sort_keys=True) + "\n")


def _assert_gates(s, *, wallclock=True):
    if wallclock:
        assert s["speedup_interleaved"] >= SPEEDUP_FLOOR, (
            f"interleaved batch gave {s['speedup_interleaved']:.2f}x over "
            f"lane-major, below the {SPEEDUP_FLOOR}x floor")
        assert s["convert_ratio"] <= CONVERT_CEILING, (
            f"layout='soa' on lane-major input cost "
            f"{s['convert_ratio']:.2f}x, above the {CONVERT_CEILING}x "
            f"ceiling")


def test_layout_speedup(benchmark):
    wall, outputs, records = run_once(benchmark, measure)
    _check_bit_identity(outputs)
    _check_trace_contract(records)
    s = _summary(wall, records, n=N, batch=BATCH)
    emit("layout", _render(s))
    _emit_json(s)
    _assert_gates(s)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        wall, outputs, records = measure(n=96, batch=128, repeats=1)
        _check_bit_identity(outputs)
        _check_trace_contract(records)
        s = _summary(wall, records, n=96, batch=128)
        print(_render(s))
        print("bit-identity and trace gates OK "
              "(quick mode: wall-clock not asserted)")
    else:
        wall, outputs, records = measure()
        _check_bit_identity(outputs)
        _check_trace_contract(records)
        s = _summary(wall, records, n=N, batch=BATCH)
        emit("layout", _render(s))
        _emit_json(s)
        _assert_gates(s)
        print(_render(s))
