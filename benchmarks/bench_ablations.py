"""Ablation benches for the design choices DESIGN.md calls out.

* in-kernel window shifting vs one kernel per block-column (Section 5.3's
  "multiple kernel calls" alternative);
* fused-GBSV cutoff sensitivity (Section 7's empirical order-64 rule);
* threads-per-matrix sensitivity of the sliding window (Section 5.3);
* the reference fork-join design's launch-overhead wall (Section 5.1).
"""

import numpy as np

from repro.bench import (
    ablation_gbsv_cutoff,
    ablation_threads,
    ablation_window_launch,
    format_figure,
    time_gbtrf,
)
from repro.gpusim import H100_PCIE

from _util import emit, finite, run_once


def test_ablation_window_launch(benchmark):
    fig = run_once(benchmark, lambda: ablation_window_launch(2, 3))
    emit("ablation_window_launch", format_figure(fig))
    single = fig.series_by_label("in-kernel shift").times
    multi = fig.series_by_label("kernel per block").times
    # The in-kernel shift is never worse (they tie when the whole matrix
    # fits in one factor window) and wins clearly at large sizes, where
    # every extra iteration would pay a launch plus re-read overlap.
    assert all(s <= m for s, m in zip(single, multi))
    assert single[-1] < multi[-1]
    assert (multi[-1] / single[-1]) > (multi[0] / single[0])


def test_ablation_gbsv_cutoff(benchmark):
    fig = run_once(benchmark, lambda: ablation_gbsv_cutoff(2, 3))
    emit("ablation_gbsv_cutoff", format_figure(fig, unit="ratio"))
    for label in ("fused/std-H100", "fused/std-MI250x"):
        ratio = fig.series_by_label(label).times
        # Fused clearly wins at the smallest sizes...
        assert ratio[0] < 0.9
        # ...and the advantage decays with size.
        vals = finite(ratio)
        assert vals[-1] > vals[0]


def test_ablation_threads(benchmark):
    fig = run_once(benchmark, lambda: ablation_threads(10, 7, n=512))
    emit("ablation_threads", format_figure(fig))
    threads = fig.xs
    times = fig.series_by_label("time").times
    # The design minimum (kl+1 = 11 threads) is far from optimal for a
    # wide band; the best swept configuration is at least 1.5x faster.
    t_min_threads = times[0]
    t_best = min(finite(times))
    assert t_min_threads / t_best > 1.5
    # But threads are not free: the curve is not monotonically improving
    # all the way (occupancy/thread-limit pressure pushes back) OR the
    # largest candidate is no better than the best.
    assert times[-1] >= t_best * 0.999


def test_reference_design_launch_wall():
    """Section 5.1: the fork-join reference is dominated by launches.

    Its per-column kernel pairs cost ~2 launches x min(m, n); it loses to
    the single-launch window design by a huge factor.
    """
    t_ref = time_gbtrf(H100_PCIE, 256, 2, 3, method="reference")
    t_win = time_gbtrf(H100_PCIE, 256, 2, 3, method="window")
    assert t_ref > 10 * t_win
    # Launch overhead alone accounts for most of the reference time.
    launch_floor = 2 * 256 * H100_PCIE.launch_overhead
    assert t_ref >= launch_floor


def test_ablation_staging(benchmark):
    """Host staging costs are real but do not erase the GPU win."""
    from repro.bench import ablation_staging, time_cpu_gbsv

    fig = run_once(benchmark, lambda: ablation_staging(2, 3))
    emit("ablation_staging", format_figure(fig))
    kernel = fig.series_by_label("kernel only").times
    staged = fig.series_by_label("with staging").times
    assert all(s > k for s, k in zip(staged, kernel))
    # Staging is substantial for this memory-light workload — up to ~2x
    # the kernel time — which is exactly why the paper measures
    # device-resident batches.
    overhead = max(s / k for s, k in zip(staged, kernel))
    assert 1.1 < overhead < 4.0
    # The GPU still beats the CPU end-to-end at small/mid sizes, but the
    # per-call staging erases the margin by the large end: the paper-size
    # advantage belongs to pipelines that keep batches device-resident.
    cpu = [time_cpu_gbsv(n, 2, 3, 1) for n in fig.xs]
    mid = fig.xs.index(256)
    assert staged[mid] < cpu[mid]
    assert staged[-1] > 0.9 * cpu[-1]
    assert staged[-1] > kernel[-1] * 1.3
