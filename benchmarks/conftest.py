"""Benchmark-suite conftest: make the shared _util module importable."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
