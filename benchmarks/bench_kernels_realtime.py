"""Real wall-clock micro-benchmarks of the functional kernels.

Unlike the figure benches (which report the calibrated device model), these
measure the actual Python/numpy implementations with pytest-benchmark —
regression guards for the library's own execution speed.
"""

import numpy as np
import pytest

from repro.band.generate import random_band_batch, random_rhs
from repro.core import gbsv_batch, gbtrf_batch, gbtrs_batch
from repro.core.gbtf2 import gbtf2
from repro.cpu import cpu_gbtrf_batch


@pytest.fixture(scope="module")
def small_batch():
    n, kl, ku = 64, 2, 3
    a = random_band_batch(16, n, kl, ku, seed=1)
    b = random_rhs(n, 1, batch=16, seed=2)
    return n, kl, ku, a, b


def test_gbtf2_single(benchmark):
    ab = random_band_batch(1, 128, 2, 3, seed=3)[0]
    benchmark(lambda: gbtf2(128, 128, 2, 3, ab.copy()))


def test_gbtrf_batch_window(benchmark, small_batch):
    n, kl, ku, a, _ = small_batch
    benchmark(lambda: gbtrf_batch(n, n, kl, ku, a.copy(), method="window"))


def test_gbtrf_batch_fused(benchmark, small_batch):
    n, kl, ku, a, _ = small_batch
    benchmark(lambda: gbtrf_batch(n, n, kl, ku, a.copy(), method="fused"))


def test_gbsv_batch_fused(benchmark, small_batch):
    n, kl, ku, a, b = small_batch
    benchmark(lambda: gbsv_batch(n, kl, ku, 1, a.copy(), None, b.copy(),
                                 method="fused"))


def test_gbtrs_batch_blocked(benchmark, small_batch):
    n, kl, ku, a, b = small_batch
    a2 = a.copy()
    piv, info = gbtrf_batch(n, n, kl, ku, a2)
    assert (info == 0).all()
    benchmark(lambda: gbtrs_batch("N", n, kl, ku, 1, a2, piv, b.copy()))


def test_cpu_baseline_scipy_lapack(benchmark, small_batch):
    n, kl, ku, a, _ = small_batch
    benchmark(lambda: cpu_gbtrf_batch(n, n, kl, ku, a.copy()))
