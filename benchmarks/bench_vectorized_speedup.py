"""Batch-interleaved vs per-block execution: host wall-clock speedup.

Unlike the modeled exhibits (which time the simulated *device*), this
benchmark times the *simulator itself*: how long the host takes to
functionally execute a paper-scale ``gbtrf_batch`` workload (batch 1000,
n=256, kl=ku=8, fp64) on the per-block reference path versus the
batch-interleaved vectorized path, and that the two paths produce
bit-identical factors.  The vectorized path is the reason the full test
suite runs in half the seed's time; the target here is a >= 10x speedup
at the paper's workload scale.
"""

import numpy as np

from repro.band.generate import random_band_batch
from repro.bench import wallclock_gbtrf_paths
from repro.core import gbtrf_batch

from _util import emit, run_once

N, KL, KU, BATCH = 256, 8, 8, 1000

# Regression floor for the asserted ratio: below the 10x target so a noisy
# CI neighbour cannot flake the suite, but far above anything a
# reintroduced per-column gather/scatter path could reach.
FLOOR = 6.0


def test_vectorized_paths_bit_identical():
    a = random_band_batch(32, N, KL, KU, seed=7)
    a_ref, a_vec = a.copy(), a.copy()
    piv_ref, info_ref = gbtrf_batch(N, N, KL, KU, a_ref, vectorize=False)
    piv_vec, info_vec = gbtrf_batch(N, N, KL, KU, a_vec)
    assert a_vec.tobytes() == a_ref.tobytes()
    assert np.stack(piv_vec).tobytes() == np.stack(piv_ref).tobytes()
    assert info_vec.tobytes() == info_ref.tobytes()


def test_vectorized_speedup(benchmark):
    r = run_once(benchmark, lambda: wallclock_gbtrf_paths(
        N, KL, KU, batch=BATCH, repeats=2, warmup=True))
    text = "\n".join([
        "Batch-interleaved execution speedup "
        f"(gbtrf_batch, batch={BATCH}, n={N}, kl=ku={KL}, fp64)",
        f"  per-block path:    {r.per_block:8.3f} s",
        f"  vectorized path:   {r.vectorized:8.3f} s",
        f"  speedup:           {r.speedup:8.1f} x   (target >= 10x)",
    ])
    emit("vectorized_speedup", text)
    assert r.speedup >= FLOOR, (
        f"vectorized path only {r.speedup:.1f}x faster "
        f"(floor {FLOOR}x)")
