"""Ablation: non-uniform batch strategies (paper Section 9 extension).

Grouped execution (one launch per distinct configuration, groups
serialised) versus the single-kernel strategy (one launch, shared-memory
reserved for the worst problem).  The crossover depends on how many
distinct shapes the batch mixes — few groups favour grouping, shape soup
favours the single kernel.
"""

import numpy as np

from repro.bench.harness import shape_only_batch
from repro.core import gbtrf_vbatch, gbtrf_vbatch_fused
from repro.gpusim import H100_PCIE, Stream

from _util import emit, run_once


def _configs(num_distinct: int, total: int, seed: int = 0):
    """A batch of `total` problems drawn from `num_distinct` shapes."""
    rng = np.random.default_rng(seed)
    shapes = [(int(n), int(kl), int(ku))
              for n, kl, ku in zip(
                  rng.integers(64, 257, num_distinct),
                  rng.integers(1, 6, num_distinct),
                  rng.integers(1, 6, num_distinct))]
    picks = [shapes[i % num_distinct] for i in range(total)]
    return picks


def _time_strategies(picks):
    ns = [p[0] for p in picks]
    kls = [p[1] for p in picks]
    kus = [p[2] for p in picks]
    # Shape-only matrices (timing run).
    mats = [shape_only_batch(n, kl, ku, 1)[0]
            for n, kl, ku in picks]
    s1, s2 = Stream(H100_PCIE), Stream(H100_PCIE)
    gbtrf_vbatch(ns, ns, kls, kus, mats, stream=s1, execute=False)
    gbtrf_vbatch_fused(ns, ns, kls, kus, mats, stream=s2, execute=False)
    return s1.elapsed, s2.elapsed, s1.launch_count()


def test_vbatch_strategy_crossover(benchmark):
    def sweep():
        rows = []
        for distinct in (1, 2, 4, 8, 16, 64, 256):
            picks = _configs(distinct, 512)
            grouped, fused, launches = _time_strategies(picks)
            rows.append((distinct, launches, grouped, fused))
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["Ablation: grouped vs single-kernel non-uniform batch "
             "(512 problems, h100-pcie)",
             f"{'distinct':>9} {'launches':>9} {'grouped ms':>12} "
             f"{'fused ms':>10} {'winner':>8}"]
    for distinct, launches, grouped, fused in rows:
        winner = "fused" if fused < grouped else "grouped"
        lines.append(f"{distinct:>9} {launches:>9} {grouped * 1e3:>12.4f} "
                     f"{fused * 1e3:>10.4f} {winner:>8}")
    emit("vbatch_strategies", "\n".join(lines))

    # With one distinct shape the strategies coincide (one launch each);
    # with many shapes the grouped strategy pays per-group launches and
    # serialisation, so the single kernel must win.
    one = rows[0]
    many = rows[-1]
    assert one[1] == 1
    assert abs(one[2] - one[3]) / one[2] < 0.25
    assert many[3] < many[2]


def test_vbatch_numerics_spot_check():
    """Both strategies produce the factors gbtf2 would."""
    from repro.band.generate import random_band
    from repro.core.gbtf2 import gbtf2
    rng = np.random.default_rng(1)
    picks = _configs(4, 12, seed=2)
    mats = [random_band(n, kl, ku, seed=rng) for n, kl, ku in picks]
    refs = []
    for (n, kl, ku), m in zip(picks, mats):
        ab = m.copy()
        piv, info = gbtf2(n, n, kl, ku, ab)
        refs.append(ab)
    got = [m.copy() for m in mats]
    gbtrf_vbatch_fused([p[0] for p in picks], [p[0] for p in picks],
                       [p[1] for p in picks], [p[2] for p in picks], got)
    for a, b in zip(got, refs):
        np.testing.assert_allclose(a, b, atol=0)
