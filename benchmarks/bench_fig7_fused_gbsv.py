"""Figure 7: fused GBSV kernel vs the standard factorize-then-solve.

Paper: the fused [A|B] kernel maximises data reuse for very small systems;
"depending on the matrix size and the bandwidth, a fused implementation
might not maintain its advantage", and the production dispatch enables it
for order <= 64 with a single right-hand side.
"""

import numpy as np

from repro.bench import fig7, format_figure
from repro.core import gbsv_batch, select_gbsv_method
from repro.band.generate import random_band_batch, random_rhs
from repro.gpusim import H100_PCIE, MI250X_GCD

from _util import emit, finite, run_once


def test_fig7_kl2_ku3(benchmark):
    fig = run_once(benchmark, lambda: fig7(2, 3))
    emit("fig7_kl2_ku3", format_figure(fig))
    for dev in ("H100", "MI250x"):
        fused = fig.series_by_label(f"Fused-{dev}").times
        std = fig.series_by_label(f"Std-{dev}").times
        # Fused wins at the small end of the sweep.
        assert fused[0] < std[0]
        # The advantage shrinks as size grows (relative gap narrows).
        first_gap = std[0] / fused[0]
        last_gap = std[-1] / fused[-1]
        assert last_gap < first_gap


def test_fig7_kl10_ku7(benchmark):
    fig = run_once(benchmark, lambda: fig7(10, 7))
    emit("fig7_kl10_ku7", format_figure(fig))
    # Wider band: the fused advantage dies earlier on the MI250x (its LDS
    # must hold the augmented [A|B]).
    fused_mi = fig.series_by_label("Fused-MI250x").times
    std_mi = fig.series_by_label("Std-MI250x").times
    assert fused_mi[0] < std_mi[0]
    crossover = next((n for n, f, s in zip(fig.xs, fused_mi, std_mi)
                      if not (f < s)), None)
    assert crossover is not None and crossover <= 96


def test_fig7_dispatch_rule():
    """Section 7: fused for order <= 64 and a single RHS only."""
    assert select_gbsv_method(H100_PCIE, 48, 2, 3, 1) == "fused"
    assert select_gbsv_method(H100_PCIE, 65, 2, 3, 1) == "standard"
    assert select_gbsv_method(H100_PCIE, 48, 2, 3, 2) == "standard"
    assert select_gbsv_method(MI250X_GCD, 64, 2, 3, 1) == "fused"


def test_fig7_fused_and_standard_agree_numerically():
    n, kl, ku = 48, 2, 3
    a = random_band_batch(6, n, kl, ku, seed=7)
    b = random_rhs(n, 1, batch=6, seed=8)
    a1, b1 = a.copy(), b.copy()
    a2, b2 = a.copy(), b.copy()
    gbsv_batch(n, kl, ku, 1, a1, None, b1, method="fused")
    gbsv_batch(n, kl, ku, 1, a2, None, b2, method="standard")
    assert np.allclose(a1, a2, atol=0)
    assert np.allclose(b1, b2, atol=1e-13)
