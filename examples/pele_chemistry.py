"""PELE-style chemical kinetics: batches of stiff Newton systems.

Run:  python examples/pele_chemistry.py

Reproduces the paper's Section 2.1 scenario: many small linear systems
``(I - h J) x = b`` from a shared reaction mechanism, high in-band density,
wide condition range.  Solves them with ``gbsv_batch`` on both simulated
devices and prints the per-kernel launch trace.
"""

import numpy as np

from repro import H100_PCIE, MI250X_GCD, Stream, band_to_dense, gbsv_batch
from repro.apps import pele_batch
from repro.gpusim import format_trace


def main() -> None:
    # "typical matrix sizes in batches do not exceed 150 but many are
    # sized 50 or less"
    for n_species in (24, 54, 144):
        pb = pele_batch(batch=64, n_species=n_species, coupling=3,
                        h=5e-2, rate_spread=8.0, seed=0)
        print(f"--- {pb.batch} Newton systems, n={pb.n}, "
              f"(kl, ku)=({pb.kl}, {pb.ku}) ---")

        # Condition spread across the batch (the PELE stress factor).
        conds = [np.linalg.cond(band_to_dense(ab, pb.n, pb.kl, pb.ku))
                 for ab in pb.a_band[:16]]
        print(f"condition numbers (first 16): "
              f"min {min(conds):.1e}  max {max(conds):.1e}")

        for device in (H100_PCIE, MI250X_GCD):
            a = pb.a_band.copy()
            x = pb.b.copy()
            stream = Stream(device, name="pele")
            pivots, info = gbsv_batch(pb.n, pb.kl, pb.ku, 1, a, None, x,
                                      device=device, stream=stream)
            assert (info == 0).all()
            a0 = band_to_dense(pb.a_band[0], pb.n, pb.kl, pb.ku)
            res = np.abs(a0 @ x[0] - pb.b[0]).max()
            print(f"{device.name:>12}: residual {res:.2e}, modeled "
                  f"{stream.synchronize() * 1e3:.3f} ms")
        print()

    # The launch trace shows which kernel design the dispatcher picked.
    pb = pele_batch(batch=64, n_species=54, seed=0)
    stream = Stream(H100_PCIE, name="pele-trace")
    gbsv_batch(pb.n, pb.kl, pb.ku, 1, pb.a_band.copy(), None,
               pb.b.copy(), device=H100_PCIE, stream=stream)
    print(format_trace([stream]))


if __name__ == "__main__":
    main()
