"""Quickstart: factor and solve a batch of band systems.

Run:  python examples/quickstart.py

Covers the three paper routines on a uniform batch in double precision:
``gbtrf_batch`` (LU with partial pivoting), ``gbtrs_batch`` (solve from the
factors), and the one-call driver ``gbsv_batch`` — plus the LAPACK band
storage helpers used to get matrices in and out.
"""

import numpy as np

from repro import (
    H100_PCIE,
    Stream,
    band_to_dense,
    gbsv_batch,
    gbtrf_batch,
    gbtrs_batch,
    random_band_batch,
    random_rhs,
    solve_residual,
)


def main() -> None:
    batch, n, kl, ku, nrhs = 200, 96, 2, 3, 4
    print(f"batch={batch} systems of order {n}, band (kl, ku)=({kl}, {ku}), "
          f"{nrhs} right-hand sides\n")

    # Matrices live in LAPACK band storage with kl fill-in rows on top
    # (factor layout): shape (2*kl + ku + 1, n) each.
    a = random_band_batch(batch, n, kl, ku, seed=0)
    b = random_rhs(n, nrhs, batch=batch, seed=1)
    a_orig = a.copy()

    # --- Route 1: factor once, solve as many times as needed ------------
    stream = Stream(H100_PCIE, name="quickstart")
    x = b.copy()
    pivots, info = gbtrf_batch(n, n, kl, ku, a, device=H100_PCIE,
                               stream=stream)
    assert (info == 0).all(), "no system should be singular"
    gbtrs_batch("N", n, kl, ku, nrhs, a, pivots, x, device=H100_PCIE,
                stream=stream)

    worst = max(solve_residual(a_orig[k], x[k], b[k], kl, ku)
                for k in range(batch))
    print(f"gbtrf+gbtrs: worst normalised residual = {worst:.2e}")
    print(f"simulated device time: {stream.synchronize() * 1e3:.3f} ms "
          f"({stream.launch_count()} kernel launches)\n")

    # --- Route 2: the one-call driver -----------------------------------
    a2, x2 = a_orig.copy(), b.copy()
    pivots2, info2 = gbsv_batch(n, kl, ku, nrhs, a2, None, x2)
    assert (info2 == 0).all()
    print(f"gbsv agrees with gbtrf+gbtrs: "
          f"{np.allclose(x2, x, atol=1e-12)}")

    # Factors overwrite A; band_to_dense(filled=True) recovers U's fill-in.
    u_dense = np.triu(band_to_dense(a2[0], n, kl, ku, filled=True))
    print(f"U factor of system 0 has bandwidth kl+ku={kl + ku} "
          f"(fill-in from pivoting): "
          f"nnz above diagonal {int((np.abs(u_dense) > 0).sum())}")


if __name__ == "__main__":
    main()
