"""The paper's extensions: non-uniform batches and JIT specialization.

Run:  python examples/nonuniform_and_jit.py

Section 9 lists "support for non-uniform batches of different sizes and/or
different bandwidths" as future work, and Section 8.1 sketches runtime
(nvrtc/hiprtc-style) compilation of kernels specialised to one band
structure.  Both are implemented here: ``gbsv_vbatch`` groups mixed
configurations into uniform sub-batches, and ``create_specialization``
gives the compile-once / reuse / destroy workflow.
"""

import numpy as np

from repro import (
    H100_PCIE,
    PointerArray,
    band_to_dense,
    create_specialization,
    destroy_specialization,
    random_band,
    random_rhs,
)
from repro.core import gbsv_vbatch, specialization_cache_info


def main() -> None:
    rng = np.random.default_rng(0)

    # --- Non-uniform batch: mixed sizes AND mixed bandwidths -------------
    configs = [(48, 2, 3), (48, 2, 3), (96, 2, 3), (96, 10, 7),
               (193, 3, 3), (48, 2, 3), (96, 10, 7), (30, 1, 1)]
    ns = [c[0] for c in configs]
    kls = [c[1] for c in configs]
    kus = [c[2] for c in configs]
    nrhss = [1] * len(configs)
    mats = [random_band(n, kl, ku, seed=rng) for n, kl, ku in configs]
    rhs = [random_rhs(n, 1, seed=rng) for n, _, _ in configs]
    originals = [m.copy() for m in mats]
    b_orig = [b.copy() for b in rhs]

    pivots, info = gbsv_vbatch(ns, kls, kus, nrhss,
                               PointerArray(mats), rhs)
    assert (info == 0).all()
    worst = 0.0
    for k, (n, kl, ku) in enumerate(configs):
        a = band_to_dense(originals[k], n, kl, ku)
        worst = max(worst, float(np.abs(a @ rhs[k] - b_orig[k]).max()))
    groups = sorted(set(configs))
    print(f"non-uniform batch of {len(configs)} problems "
          f"({len(groups)} distinct configurations -> {len(groups)} "
          f"uniform sub-batches)")
    print(f"worst residual across mixed configurations: {worst:.2e}\n")

    # --- JIT-style band specialization -----------------------------------
    spec = create_specialization(H100_PCIE, kl=2, ku=3)
    print(f"compiled specialization: (kl, ku)=({spec.kl}, {spec.ku}), "
          f"tuned nb={spec.nb}, threads={spec.threads}")
    again = create_specialization(H100_PCIE, kl=2, ku=3)
    live, compiles = specialization_cache_info()
    print(f"second create was a cache hit: {again is spec} "
          f"(live={live}, total compiles={compiles})")

    batch, n = 32, 256
    a = np.stack([random_band(n, 2, 3, seed=rng) for _ in range(batch)])
    a_ref = a.copy()
    piv, info = spec.gbtrf_batch(n, n, a)
    assert (info == 0).all()

    # Identical numerics to the generic kernel.
    from repro import gbtrf_batch
    piv2, info2 = gbtrf_batch(n, n, 2, 3, a_ref)
    print(f"specialized factors match generic kernel: "
          f"{np.allclose(a, a_ref) and all(np.array_equal(p, q) for p, q in zip(piv, piv2))}")

    destroy_specialization(spec)
    try:
        spec.gbtrf_batch(n, n, a)
    except Exception as exc:
        print(f"use after destroy correctly fails: {type(exc).__name__}")


if __name__ == "__main__":
    main()
