"""AMR-controlled batch formation for ReactEval (paper Section 2.3).

Run:  python examples/amr_reacteval.py

"Controlling the total number of linear systems and the number of batches
occurs by changing the AMR parameters."  This example sweeps those
parameters, shows how the batch sizes handed to the band solver change,
and integrates a refined hierarchy end to end, including the modeled
device time per level.
"""

from repro import H100_PCIE, Stream
from repro.apps import AmrParams, build_hierarchy, chain_mechanism, integrate_hierarchy


def main() -> None:
    n_species = 12
    mech = chain_mechanism(n_species, coupling=2, rate_spread=3.0, seed=0)
    kl, ku = mech.bandwidth()
    print(f"mechanism: {n_species} species, Jacobian band "
          f"(kl, ku)=({kl}, {ku})\n")

    print("AMR parameters -> linear systems per integrator stage:")
    print(f"{'base':>6} {'levels':>7} {'thresh':>7} {'ratio':>6} "
          f"{'batches (per level)':>22} {'total':>6}")
    for base, levels, thresh, ratio in [
            (32, 1, 1.0, 2), (32, 2, 1.0, 2), (32, 3, 1.0, 2),
            (32, 2, 0.2, 2), (64, 2, 1.0, 2), (32, 2, 1.0, 4)]:
        params = AmrParams(base_cells=base, max_levels=levels,
                           refine_threshold=thresh, refine_ratio=ratio)
        hier = build_hierarchy(params, n_species)
        print(f"{base:>6} {levels:>7} {thresh:>7.1f} {ratio:>6} "
              f"{str(hier.batch_sizes()):>22} {hier.total_cells:>6}")

    # Integrate a refined hierarchy; every level is one solver batch.
    params = AmrParams(base_cells=64, max_levels=3, refine_threshold=0.8)
    hier = build_hierarchy(params, n_species)
    stream = Stream(H100_PCIE, name="amr")
    stats = integrate_hierarchy(hier, mech, t_end=4e-3, dt=1e-3,
                                device=H100_PCIE, stream=stream)
    print(f"\nintegrated hierarchy with batch sizes {hier.batch_sizes()}:")
    for level, s in sorted(stats.items()):
        print(f"  level {level}: {s.steps} steps, {s.solver_calls} "
              f"gbsv_batch calls, converged={s.converged}")
    print(f"total modeled solver time: {stream.synchronize() * 1e3:.3f} ms "
          f"({stream.launch_count()} launches)")


if __name__ == "__main__":
    main()
