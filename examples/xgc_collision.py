"""XGC-style plasma collision operator: 512 systems of order 193.

Run:  python examples/xgc_collision.py

Reproduces the paper's Section 2.2 workload: a batch of 512 implicit
collision-operator systems from a Q3 finite-element discretisation (order
193 = 3 x 64 elements + 1, semi-bandwidth 3).  Factors once, then reuses
the factors for several solves — the multi-species call pattern.
"""

import numpy as np

from repro import H100_PCIE, MI250X_GCD, Stream, band_to_dense, gbtrf_batch, gbtrs_batch
from repro.apps import xgc_batch


def main() -> None:
    xb = xgc_batch(batch=512, n_elements=64, nrhs=1, seed=0)
    print(f"{xb.batch} collision systems, order n={xb.n} "
          f"(paper: 512 systems, M=N=193), (kl, ku)=({xb.kl}, {xb.ku})\n")

    rng = np.random.default_rng(1)
    for device in (H100_PCIE, MI250X_GCD):
        a = xb.a_band.copy()
        stream = Stream(device, name="xgc")

        # Factor once; the collision operator is reused across RK stages.
        pivots, info = gbtrf_batch(xb.n, xb.n, xb.kl, xb.ku, a,
                                   device=device, stream=stream)
        assert (info == 0).all()
        t_factor = stream.synchronize()

        # Multi-species setups solve against the same factors repeatedly
        # ("10 species models" in the paper's WDMApp milestone).
        n_species = 10
        worst = 0.0
        for _ in range(n_species):
            b = rng.standard_normal((xb.batch, xb.n, 1))
            x = b.copy()
            gbtrs_batch("N", xb.n, xb.kl, xb.ku, 1, a, pivots, x,
                        device=device, stream=stream)
            a0 = band_to_dense(xb.a_band[0], xb.n, xb.kl, xb.ku)
            worst = max(worst, float(np.abs(a0 @ x[0] - b[0]).max()))
        t_total = stream.synchronize()

        print(f"{device.name:>12}: factor {t_factor * 1e3:.3f} ms, "
              f"+{n_species} species solves -> total {t_total * 1e3:.3f} ms,"
              f" worst residual {worst:.2e}")

    print("\nAmortisation: with the factors cached, each extra species "
          "costs only a triangular solve — the reuse the LAPACK "
          "GBTRF/GBTRS split exists for.")


if __name__ == "__main__":
    main()
