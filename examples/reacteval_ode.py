"""ReactEval-style batched stiff ODE integration (SUNDIALS use case).

Run:  python examples/reacteval_ode.py

Advances a batch of stiff reaction networks from a sinusoidal initial
profile with an implicit integrator whose Newton systems are solved by
``gbsv_batch`` — the paper's Section 2.3 scenario.  Compares backward
Euler and BDF2 and reports the solver-call counters.
"""

import numpy as np

from repro import H100_PCIE, Stream
from repro.apps import chain_mechanism, integrate_batch, rate, sinusoidal_states


def main() -> None:
    batch, n_species = 32, 20
    mech = chain_mechanism(n_species, coupling=2, rate_spread=4.0, seed=0)
    kl, ku = mech.bandwidth()
    print(f"mechanism: {n_species} species, {len(mech.reactions)} "
          f"reactions, Jacobian band (kl, ku)=({kl}, {ku})")

    # "the initial state comes from a sinusoidal temperature profile"
    y0 = sinusoidal_states(batch, n_species)
    print(f"batch of {batch} reactors, initial mass range "
          f"[{y0.min():.3f}, {y0.max():.3f}]\n")

    t_end = 2e-2
    for method in ("beuler", "bdf2"):
        stream = Stream(H100_PCIE, name=f"reacteval-{method}")
        result = integrate_batch(mech, y0, t_end, dt=2e-3, method=method,
                                 device=H100_PCIE, stream=stream)
        s = result.stats
        assert s.converged, "Newton failed to converge"
        drift = np.abs(rate(mech, result.y[0])).max()
        print(f"{method:>7}: {s.steps} steps, {s.newton_iterations} Newton "
              f"iterations, {s.solver_calls} gbsv_batch calls, "
              f"{s.jacobian_evaluations} Jacobians")
        print(f"         final |dy/dt| of reactor 0: {drift:.3e}, "
              f"simulated solver time {stream.synchronize() * 1e3:.3f} ms")

    # Convergence sanity: halving dt should roughly halve backward-Euler's
    # error and quarter BDF2's (verified rigorously in the test suite).
    ref = integrate_batch(mech, y0, t_end, dt=2.5e-4, method="bdf2").y
    for method, order in (("beuler", 1), ("bdf2", 2)):
        errs = []
        for dt in (2e-3, 1e-3):
            y = integrate_batch(mech, y0, t_end, dt=dt, method=method).y
            errs.append(np.abs(y - ref).max())
        rate_obs = np.log2(errs[0] / errs[1])
        print(f"\n{method}: error {errs[0]:.2e} -> {errs[1]:.2e} when dt "
              f"halves (observed order ~{rate_obs:.1f}, expected {order})")


if __name__ == "__main__":
    main()
