"""Expert pipeline: equilibrate, solve in low precision, refine, certify.

Run:  python examples/mixed_precision_refinement.py

Composes the LAPACK-style band family around the batched solver on badly
conditioned chemistry-like matrices:

1. ``gbequ``/``laqgb`` — scale away the wild row norms (PELE's condition
   spread, paper Section 2.1);
2. ``gbsv_refined_batch`` — factor in float32 (half the memory traffic,
   the natural GPU follow-up to the paper), then recover full float64
   accuracy with iterative refinement against the original matrices;
3. ``gbcon_batch`` — certify the solves with a condition estimate from the
   factors already in hand.
"""

import numpy as np

from repro import band_to_dense, graded_condition_band, random_rhs
from repro.band.ops import band_norm_1
from repro.core import (
    gbcon_batch,
    gbequ_batch,
    gbsv_batch,
    gbsv_refined_batch,
    gbtrf_batch,
    laqgb_batch,
)


def main() -> None:
    batch, n, kl, ku = 16, 96, 2, 3
    rng = np.random.default_rng(0)
    a = np.stack([
        graded_condition_band(n, kl, ku, cond=10.0 ** rng.uniform(4, 9),
                              seed=rng)
        for _ in range(batch)])
    b = random_rhs(n, 1, batch=batch, seed=1)

    conds = [np.linalg.cond(band_to_dense(m, n, kl, ku)) for m in a[:4]]
    print(f"{batch} systems of order {n}, cond range ~1e4..1e9 "
          f"(first four: {', '.join(f'{c:.1e}' for c in conds)})\n")

    # --- 1. equilibrate ---------------------------------------------------
    rs, cs, rowcnds, colcnds, amaxs, info = gbequ_batch(n, n, kl, ku, a)
    assert (info == 0).all()
    equeds = laqgb_batch(n, n, kl, ku, a, rs, cs, rowcnds, colcnds)
    scaled_b = b.copy()
    for k, equed in enumerate(equeds):
        if equed in ("R", "B"):          # row scaling also scales the RHS
            scaled_b[k] = rs[k][:, None] * b[k]
    print(f"equilibration applied: {dict((e, equeds.count(e)) for e in set(equeds))}")
    new_conds = [np.linalg.cond(band_to_dense(m, n, kl, ku))
                 for m in a[:4]]
    print(f"conditions after scaling (first four): "
          f"{', '.join(f'{c:.1e}' for c in new_conds)}\n")

    # --- 2. mixed-precision solve + refinement ----------------------------
    x, info, results = gbsv_refined_batch(n, kl, ku, 1, a, scaled_b,
                                          factor_dtype=np.float32)
    assert (info == 0).all()
    iters = [r.iterations for r in results]
    print(f"float32 factor + refinement: {min(iters)}-{max(iters)} "
          f"iterations, all converged: {all(r.converged for r in results)}")
    # Undo the column scaling to recover the original unknowns.
    for k, equed in enumerate(equeds):
        if equed in ("C", "B"):
            x[k] = cs[k][:, None] * x[k]

    # Residuals against the *original* (pre-scaling) systems; rebuild them
    # from the same seeds since `a` was equilibrated in place.
    rng = np.random.default_rng(0)
    originals = np.stack([
        graded_condition_band(n, kl, ku, cond=10.0 ** rng.uniform(4, 9),
                              seed=rng)
        for _ in range(batch)])
    worst = 0.0
    for k in range(batch):
        dense = band_to_dense(originals[k], n, kl, ku)
        r = np.abs(dense @ x[k] - b[k]).max()
        scale = np.abs(dense).max() * np.abs(x[k]).max()
        worst = max(worst, r / scale)
    print(f"worst scaled residual vs original systems: {worst:.2e}\n")

    # --- 3. certify with condition estimates ------------------------------
    anorms = [band_norm_1(m, n, kl, ku) for m in a]
    fact = a.copy()
    piv, info = gbtrf_batch(n, n, kl, ku, fact)
    rconds = gbcon_batch("1", n, kl, ku, fact, piv, anorms)
    print("reciprocal condition estimates (equilibrated systems): "
          f"min {rconds.min():.2e}, max {rconds.max():.2e}")
    print("rule of thumb: trust ~ -log10(rcond) fewer digits; all "
          f"systems keep >= {int(-np.log10(np.finfo(np.float64).eps / rconds.min()))} digits here")


if __name__ == "__main__":
    main()
