"""From structural sparsity to a band solve (the PELE premise, §2.1).

Run:  python examples/sparse_to_banded.py

The paper's motivating workloads are *structurally sparse* systems whose
patterns compress well into bands ("approximately 90% of entries are
non-zero" within the band after fill-in).  This example walks the whole
pipeline: a sparse Jacobian-like pattern, reverse Cuthill-McKee reordering
to expose the band, packing into LAPACK band storage, a batched solve, and
the operation-count spread that makes Gflop/s reporting awkward (the
paper's Section 2 caveat).
"""

import numpy as np
import scipy.sparse as sp

from repro.band import bandwidth_after, rcm_ordering, sparse_to_band
from repro.core import (
    gbsv_batch,
    gbtrf_opcount_batch,
    gbtrf_opcount_bounds,
)


def hidden_band_system(n: int, width: int, seed: int) -> sp.csr_matrix:
    """A banded operator hiding behind a random node numbering."""
    rng = np.random.default_rng(seed)
    diags = [rng.standard_normal(n - abs(d)) for d in range(-width, 1)]
    a = sp.diags(diags, list(range(-width, 1)), shape=(n, n)).tocsr()
    a = a + a.T + sp.eye(n) * (2 * width + 4)
    shuffle = rng.permutation(n)
    return sp.csr_matrix(a.toarray()[np.ix_(shuffle, shuffle)])


def main() -> None:
    n, width, batch = 96, 3, 16
    systems = [hidden_band_system(n, width, seed) for seed in range(batch)]

    # --- 1. expose the band ----------------------------------------------
    natural = bandwidth_after(systems[0], np.arange(n))
    perm = rcm_ordering(systems[0])
    reordered = bandwidth_after(systems[0], perm)
    print(f"sparsity pattern: natural bandwidth {natural} -> "
          f"RCM bandwidth {reordered}")

    banded = [sparse_to_band(a) for a in systems]
    kl = max(s.kl for s in banded)
    ku = max(s.ku for s in banded)
    print(f"uniform batch band: (kl, ku) = ({kl}, {ku})\n")

    # --- 2. batched solve ---------------------------------------------------
    from repro.band.convert import dense_to_band, band_to_dense
    rng = np.random.default_rng(99)
    b = rng.standard_normal((batch, n, 1))
    # Repack every system at the batch-uniform band.
    a_band = np.stack([
        dense_to_band(band_to_dense(s.ab, n, s.kl, s.ku), kl, ku)
        for s in banded])
    a_orig = a_band.copy()
    bp = np.stack([banded[k].permute_rhs(b[k]) for k in range(batch)])
    x = bp.copy()
    pivots, info = gbsv_batch(n, kl, ku, 1, a_band, None, x)
    assert (info == 0).all()
    worst = 0.0
    for k in range(batch):
        xk = banded[k].unpermute_solution(x[k])
        worst = max(worst, float(np.abs(systems[k] @ xk - b[k]).max()))
    print(f"solved {batch} reordered systems, worst residual {worst:.2e}\n")

    # --- 3. the Gflop/s caveat (paper §2) ----------------------------------
    # These collision-style operators are diagonally dominant, so they
    # never pivot and every matrix does the *minimum* work:
    counts, _, _ = gbtrf_opcount_batch(n, n, kl, ku, a_orig)
    lo, hi = gbtrf_opcount_bounds(n, n, kl, ku)
    dd = np.array([c.flops for c in counts])
    # General matrices of the same dimensions pivot freely:
    from repro.band.generate import random_band_batch
    wild = random_band_batch(batch, n, kl, ku, seed=7)
    counts_w, _, _ = gbtrf_opcount_batch(n, n, kl, ku, wild)
    flops = np.array([c.flops for c in counts_w])
    print("operation count per matrix (identical dimensions!):")
    print(f"  closed-form bounds     : {lo.flops} .. {hi.flops}")
    print(f"  dominant batch (no piv): all {dd.min()} (the minimum)")
    print(f"  general batch          : {flops.min()} .. {flops.max()} "
          f"(mean {flops.mean():.0f}, {len(set(flops.tolist()))} distinct)")
    print("  -> 'the operation count per matrix depends on the pivoting "
          "pattern' — hence the paper reports time-to-solution, not "
          "Gflop/s.")


if __name__ == "__main__":
    main()
