"""Setup shim: metadata lives in setup.cfg.

A setup.py (rather than pyproject.toml) is deliberate: it lets
``pip install -e .`` work in fully offline environments, where PEP 517
build isolation would try to download setuptools.
"""
from setuptools import setup

setup()
